#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/operators.h"
#include "tests/test_util.h"
#include "twigjoin/naive_twig.h"
#include "twigjoin/twig_matchers.h"
#include "twigjoin/twigstack.h"
#include "xml/node_index.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

TEST(TwigStackTest, SimpleAncestorDescendant) {
  auto doc = ParseXml("<a><x><b/></x><b/></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a//b");
  auto rel = MatchTwigStack(*doc, index, *twig);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->num_rows(), 2u);
}

TEST(TwigStackTest, ParentChildFiltered) {
  auto doc = ParseXml("<a><x><b/></x><b/></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  auto rel = MatchTwigStack(*doc, index, *twig);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 1u);
}

TEST(TwigStackTest, BranchingTwig) {
  auto doc = ParseXml("<a><b/><c/></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a[b]/c");
  auto rel = MatchTwigStack(*doc, index, *twig);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 1u);
}

TEST(TwigStackTest, EmptyWhenLeafStreamEmpty) {
  auto doc = ParseXml("<a><b/></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a[b]/zzz");
  auto rel = MatchTwigStack(*doc, index, *twig);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 0u);
}

TEST(TwigStackTest, SingleNodeTwig) {
  auto doc = ParseXml("<a><b/><b/></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("b");
  auto rel = MatchTwigStack(*doc, index, *twig);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 2u);
}

TEST(TwigStackTest, NestedSameTagAncestors) {
  auto doc = ParseXml("<a><a><a><b/></a></a></a>");
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a//a=a2//b");
  auto rel = MatchTwigStack(*doc, index, *twig);
  ASSERT_TRUE(rel.ok());
  // (a0,a1,b),(a0,a2,b),(a1,a2,b): 3 embeddings.
  EXPECT_EQ(rel->num_rows(), 3u);
}

TEST(TwigStackTest, SuboptimalityCounterOnPcTwigs) {
  // The classic P-C weakness: elements pushed that never join.
  std::string xml = "<root>";
  // a/b fails (depth 2).
  for (int i = 0; i < 8; ++i) xml += "<a><m><b/></m></a>";
  xml += "<a><b/></a></root>";
  auto doc = ParseXml(xml);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(&*doc, &dict);
  auto twig = Twig::Parse("a/b");
  Metrics m;
  auto rel = MatchTwigStack(*doc, index, *twig, &m);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 1u);
  EXPECT_GT(m.Get("twigstack.pushes"), 2);  // useless pushes happened
}

// Differential: TwigStack equals the naive oracle on random docs/twigs.
class TwigStackProperty : public ::testing::TestWithParam<int> {};

TEST_P(TwigStackProperty, MatchesNaive) {
  Rng rng(30000 + static_cast<uint64_t>(GetParam()));
  std::vector<std::string> tags = {"a", "b", "c"};
  auto doc = testing::RandomDocument(&rng, 2 + rng.NextBounded(35), tags, 3);
  Dictionary dict;
  NodeIndex index = NodeIndex::Build(doc.get(), &dict);
  Twig twig = testing::RandomTwig(&rng, 1 + rng.NextBounded(5), tags);

  auto expected = MatchesToRelation(twig, MatchTwigNaive(*doc, twig));
  ASSERT_TRUE(expected.ok());
  expected->SortAndDedup();

  auto fast = MatchTwigStack(*doc, index, twig);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  auto fast_proj = Project(*fast, expected->schema().attributes());
  ASSERT_TRUE(fast_proj.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*fast_proj, *expected))
      << "TwigStack diverged on twig " << twig.ToString() << "\nfast:\n"
      << fast_proj->ToString(50) << "\nexpected:\n" << expected->ToString(50);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TwigStackProperty,
                         ::testing::Range(0, 80));

}  // namespace
}  // namespace xjoin
