// File-level ingestion paths (ReadCsvFile / ParseXmlFile) and their
// error reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "relational/csv.h"
#include "xml/parser.h"

namespace xjoin {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

TEST(CsvFileTest, ReadsFromDisk) {
  std::string path = TempPath("xjoin_orders.csv");
  WriteFile(path, "orderID,userID\n1,jack\n2,tom\n");
  Dictionary dict;
  auto rel = ReadCsvFile(path, CsvOptions{}, &dict);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileFails) {
  Dictionary dict;
  auto rel =
      ReadCsvFile(TempPath("definitely_missing.csv"), CsvOptions{}, &dict);
  EXPECT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kIOError);
}

TEST(CsvFileTest, ParseErrorMentionsPath) {
  std::string path = TempPath("xjoin_bad.csv");
  WriteFile(path, "A,B\nonly-one-field\n");
  Dictionary dict;
  auto rel = ReadCsvFile(path, CsvOptions{}, &dict);
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("xjoin_bad.csv"), std::string::npos);
  std::remove(path.c_str());
}

TEST(XmlFileTest, ReadsFromDisk) {
  std::string path = TempPath("xjoin_doc.xml");
  WriteFile(path, "<a><b>hi</b></a>");
  auto doc = ParseXmlFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->num_nodes(), 2u);
  std::remove(path.c_str());
}

TEST(XmlFileTest, MissingFileFails) {
  auto doc = ParseXmlFile(TempPath("definitely_missing.xml"));
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kIOError);
}

TEST(XmlFileTest, ParseErrorMentionsPath) {
  std::string path = TempPath("xjoin_bad.xml");
  WriteFile(path, "<a><b></a>");
  auto doc = ParseXmlFile(path);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("xjoin_bad.xml"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xjoin
