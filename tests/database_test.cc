#include <gtest/gtest.h>

#include "core/database.h"
#include "relational/operators.h"

namespace xjoin {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterRelationCsv("R",
                                        "orderID,userID\n"
                                        "10963,jack\n"
                                        "20134,tom\n"
                                        "35768,bob\n")
                    .ok());
    ASSERT_TRUE(db_.RegisterDocumentXml("invoices", R"(
      <invoices>
        <invoice><orderID>10963</orderID>
          <orderLine><ISBN>978-3-16-1</ISBN><price>30</price></orderLine>
        </invoice>
        <invoice><orderID>20134</orderID>
          <orderLine><ISBN>634-3-12-2</ISBN><price>20</price></orderLine>
        </invoice>
      </invoices>)")
                    .ok());
  }

  MultiModelDatabase db_;
};

TEST_F(DatabaseTest, RegistrationAndLookups) {
  EXPECT_TRUE(db_.relation("R").ok());
  EXPECT_FALSE(db_.relation("S").ok());
  EXPECT_TRUE(db_.document_index("invoices").ok());
  EXPECT_FALSE(db_.document_index("other").ok());
  EXPECT_EQ(db_.RelationNames(), (std::vector<std::string>{"R"}));
  EXPECT_EQ(db_.DocumentNames(), (std::vector<std::string>{"invoices"}));
}

TEST_F(DatabaseTest, DuplicateNamesRejected) {
  EXPECT_FALSE(db_.RegisterRelationCsv("R", "A\n1\n").ok());
  EXPECT_FALSE(db_.RegisterDocumentXml("R", "<a/>").ok());
  EXPECT_FALSE(db_.RegisterDocumentXml("invoices", "<a/>").ok());
}

TEST_F(DatabaseTest, Figure1QueryThroughTextInterface) {
  auto result = db_.Query(
      "Q(userID, ISBN, price) := R, "
      "invoices : invoice[orderID]/orderLine[ISBN]/price");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  const Dictionary& dict = db_.dictionary();
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("jack"), dict.Lookup("978-3-16-1"), dict.Lookup("30")}));
}

TEST_F(DatabaseTest, EnginesAgree) {
  const char* q =
      "Q(userID, ISBN) := R, invoices:invoice[orderID]/orderLine/ISBN";
  auto a = db_.Query(q, Engine::kXJoin);
  auto b = db_.Query(q, Engine::kBaseline);
  ASSERT_TRUE(a.ok() && b.ok());
  auto bp = Project(*b, a->schema().attributes());
  ASSERT_TRUE(bp.ok());
  EXPECT_TRUE(RelationsEqualAsSets(*a, *bp));
}

TEST_F(DatabaseTest, StarHeadAndHeadlessQueries) {
  auto star = db_.Query("Q(*) := R");
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  EXPECT_EQ(star->schema().size(), 2u);
  auto headless = db_.Query("R");
  ASSERT_TRUE(headless.ok());
  EXPECT_EQ(headless->num_rows(), 3u);
}

TEST_F(DatabaseTest, TwigBranchCommasDoNotSplitInputs) {
  auto result = db_.Query(
      "Q(ISBN, price) := invoices:invoice/orderLine[ISBN,price]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(DatabaseTest, ParseErrors) {
  EXPECT_FALSE(db_.Query("Q(userID := R").ok());          // bad head
  EXPECT_FALSE(db_.Query("Q(a) := ").ok());               // no inputs
  EXPECT_FALSE(db_.Query("missing").ok());                // unknown relation
  EXPECT_FALSE(db_.Query("nope:a/b").ok());               // unknown document
  EXPECT_FALSE(db_.Query("invoices:a[").ok());            // bad twig
  EXPECT_FALSE(db_.Query("Q(zzz) := R").ok());            // unknown output attr
  EXPECT_FALSE(db_.Query("R,,R").ok());                   // empty input
}

TEST_F(DatabaseTest, MetricsPlumbing) {
  Metrics m;
  auto result = db_.Query("Q(userID) := R, invoices:invoice/orderID",
                          Engine::kXJoin, &m);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(m.Get("gj.total_intermediate"), 0);
}

TEST_F(DatabaseTest, ExplainShowsPlan) {
  auto plan = db_.Explain(
      "Q(userID, ISBN, price) := R, "
      "invoices:invoice[orderID]/orderLine[ISBN]/price");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("relation R(orderID, userID)"), std::string::npos);
  EXPECT_NE(plan->find("transform(Sx)"), std::string::npos);
  EXPECT_NE(plan->find("expansion order"), std::string::npos);
  EXPECT_NE(plan->find("worst-case size bound"), std::string::npos);
}

TEST_F(DatabaseTest, TwoDocumentsJoinThroughRelation) {
  ASSERT_TRUE(db_.RegisterDocumentXml("books", R"(
      <books>
        <book><isbn>978-3-16-1</isbn><genre>databases</genre></book>
        <book><isbn>634-3-12-2</isbn><genre>systems</genre></book>
      </books>)")
                  .ok());
  // Two twigs over two documents; ISBN joins them (aliased on the books
  // side so attribute names collide correctly).
  auto result = db_.Query(
      "Q(userID, genre) := R, "
      "invoices:invoice[orderID]/orderLine/ISBN, "
      "books:book[isbn=ISBN]/genre");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dictionary& dict = db_.dictionary();
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("jack"), dict.Lookup("databases")}));
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("tom"), dict.Lookup("systems")}));
}

TEST_F(DatabaseTest, NodeIdAlwaysPolicy) {
  ASSERT_TRUE(db_.RegisterDocumentXml("structural", "<a><b>x</b><b>x</b></a>",
                                      ValuePolicy::kNodeIdAlways)
                  .ok());
  auto result = db_.Query("structural:a/b");
  ASSERT_TRUE(result.ok());
  // Two b's with identical text still yield two rows (node identity).
  EXPECT_EQ(result->num_rows(), 2u);
}

}  // namespace
}  // namespace xjoin
