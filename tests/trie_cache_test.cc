// Database-level trie cache: hits on re-planned queries, keying by
// (relation, attribute order, relation version), invalidation on
// UpdateRelation and via the explicit hook, and byte-identical results
// with the cache on or off. A repeated *identical* query is served by
// the plan cache without consulting the trie cache at all (its tries
// are pinned in the plan — see plan_test.cc), so the tests below clear
// the plan cache wherever they mean to exercise trie-cache hits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/database.h"

namespace xjoin {
namespace {

class TrieCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterRelationCsv("R",
                                        "A,B\n"
                                        "1,x\n"
                                        "1,y\n"
                                        "2,x\n")
                    .ok());
    ASSERT_TRUE(db_.RegisterRelationCsv("S",
                                        "B,C\n"
                                        "x,7\n"
                                        "y,8\n")
                    .ok());
  }

  MultiModelDatabase db_;
};

TEST_F(TrieCacheTest, RepeatedQueriesHitTheCache) {
  Metrics first_metrics;
  auto first = db_.Query("Q(*) := R, S", Engine::kXJoin, &first_metrics);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(db_.trie_cache_misses(), 2);  // one trie per relation
  EXPECT_EQ(db_.trie_cache_hits(), 0);
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  EXPECT_EQ(first_metrics.Get("db.trie_cache.misses"), 2);

  // Re-plan the same text: the fresh plan pins its tries through the
  // cache and hits both entries.
  db_.ClearPlanCache();
  Metrics second_metrics;
  auto second = db_.Query("Q(*) := R, S", Engine::kXJoin, &second_metrics);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(db_.trie_cache_misses(), 2);
  EXPECT_EQ(db_.trie_cache_hits(), 2);
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  EXPECT_EQ(second_metrics.Get("db.trie_cache.hits"), 2);
  EXPECT_EQ(second_metrics.Get("db.trie_cache.misses"), 0);

  // Cached and uncached runs are byte-identical.
  EXPECT_EQ(first->ToTuples(), second->ToTuples());
}

TEST_F(TrieCacheTest, DistinctAttributeOrdersGetDistinctEntries) {
  XJoinOptions forward;
  forward.attribute_order = {"A", "B", "C"};
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", forward).ok());
  size_t after_first = db_.TrieCacheSize();
  EXPECT_EQ(after_first, 2u);

  // A different global order induces a different trie order for R
  // ((B,A) instead of (A,B)) — a new cache entry, not a bogus hit — but
  // S's induced order (B,C) is unchanged and hits.
  XJoinOptions reversed;
  reversed.attribute_order = {"B", "A", "C"};
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", reversed).ok());
  EXPECT_EQ(db_.TrieCacheSize(), 3u);
  EXPECT_EQ(db_.trie_cache_hits(), 1);
}

TEST_F(TrieCacheTest, UpdateRelationInvalidatesAndRebuilds) {
  ASSERT_TRUE(db_.Query("Q(*) := R, S").ok());
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  EXPECT_EQ(*db_.relation_version("R"), 0u);

  // Replace R: its cached trie must go; S's must stay.
  Relation replacement = **db_.relation("R");
  Tuple extra = {db_.mutable_dictionary()->Intern("2"),
                 db_.mutable_dictionary()->Intern("y")};
  replacement.AppendRow(extra);
  ASSERT_TRUE(db_.UpdateRelation("R", std::move(replacement)).ok());
  EXPECT_EQ(*db_.relation_version("R"), 1u);
  EXPECT_EQ(db_.TrieCacheSize(), 1u);

  // The next query sees the new contents (no stale trie).
  auto result = db_.Query("Q(A, B, C) := R, S");
  ASSERT_TRUE(result.ok());
  const Dictionary& dict = db_.dictionary();
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("2"), dict.Lookup("y"), dict.Lookup("8")}));
  EXPECT_EQ(db_.TrieCacheSize(), 2u);

  // Updating a relation that does not exist fails.
  auto s = Schema::Make({"Z"});
  EXPECT_FALSE(db_.UpdateRelation("nope", Relation(*s)).ok());
}

TEST_F(TrieCacheTest, ApplyRelationDeltaPatchesInsteadOfInvalidating) {
  ASSERT_TRUE(db_.Query("Q(*) := R, S").ok());
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  const int64_t misses_before = db_.trie_cache_misses();

  // A delta to R re-keys its cached trie at the new version by
  // patching it in place — no entry is dropped, nothing is rebuilt.
  RelationDelta delta;
  delta.inserts = {{db_.mutable_dictionary()->Intern("2"),
                    db_.mutable_dictionary()->Intern("y")}};
  ASSERT_TRUE(db_.ApplyRelationDelta("R", delta).ok());
  EXPECT_EQ(*db_.relation_version("R"), 1u);
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
  CacheStats stats = db_.cache_stats();
  EXPECT_EQ(stats.trie_patches, 1);

  // The next query is served by the patched trie: new contents, and no
  // trie-cache miss (i.e. no from-scratch build).
  auto result = db_.Query("Q(A, B, C) := R, S");
  ASSERT_TRUE(result.ok());
  const Dictionary& dict = db_.dictionary();
  EXPECT_TRUE(result->ContainsRow(
      {dict.Lookup("2"), dict.Lookup("y"), dict.Lookup("8")}));
  EXPECT_EQ(db_.trie_cache_misses(), misses_before);

  // Deleting the same row again via the delta path restores the
  // original contents (second patch on the already-patched trie).
  RelationDelta undo;
  undo.deletes = delta.inserts;
  ASSERT_TRUE(db_.ApplyRelationDelta("R", undo).ok());
  auto restored = db_.Query("Q(A, B, C) := R, S");
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->ContainsRow(
      {dict.Lookup("2"), dict.Lookup("y"), dict.Lookup("8")}));
  EXPECT_EQ(db_.cache_stats().trie_patches, 2);
  EXPECT_EQ(db_.trie_cache_misses(), misses_before);
}

TEST_F(TrieCacheTest, ExplicitInvalidationHooks) {
  ASSERT_TRUE(db_.Query("Q(*) := R, S").ok());
  ASSERT_EQ(db_.TrieCacheSize(), 2u);

  db_.InvalidateTrieCache("R");
  EXPECT_EQ(db_.TrieCacheSize(), 1u);
  db_.InvalidateTrieCache("R");  // idempotent
  EXPECT_EQ(db_.TrieCacheSize(), 1u);

  db_.ClearTrieCache();
  EXPECT_EQ(db_.TrieCacheSize(), 0u);

  // Re-planned queries after a flush rebuild and re-populate. (Without
  // the plan flush the cached plan would just replay its pinned tries.)
  db_.ClearPlanCache();
  ASSERT_TRUE(db_.Query("Q(*) := R, S").ok());
  EXPECT_EQ(db_.TrieCacheSize(), 2u);
}

TEST_F(TrieCacheTest, CachedRunsMatchProviderFreeRuns) {
  // Run once with the database cache (warm it), once explicitly
  // provider-free; relations and twigs must agree byte for byte.
  ASSERT_TRUE(db_.RegisterDocumentXml("doc", R"(
      <items><item><B>x</B><D>5</D></item>
             <item><B>y</B><D>6</D></item></items>)")
                  .ok());
  const std::string q = "Q(*) := R, S, doc : item[B]/D";
  auto cached_cold = db_.Query(q);
  ASSERT_TRUE(cached_cold.ok()) << cached_cold.status().ToString();
  auto cached_warm = db_.Query(q);
  ASSERT_TRUE(cached_warm.ok());

  XJoinOptions no_cache;
  no_cache.trie_provider = [](const std::string&, const Relation&,
                              const std::vector<std::string>&)
      -> Result<std::shared_ptr<const RelationTrie>> {
    return std::shared_ptr<const RelationTrie>();  // always build locally
  };
  auto uncached = db_.QueryXJoin(q, no_cache);
  ASSERT_TRUE(uncached.ok());

  EXPECT_EQ(cached_cold->ToTuples(), cached_warm->ToTuples());
  EXPECT_EQ(cached_cold->ToTuples(), uncached->ToTuples());
}

TEST_F(TrieCacheTest, ShardedQueriesShareTheCache) {
  XJoinOptions sharded;
  sharded.num_threads = 4;
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", sharded).ok());
  int64_t misses = db_.trie_cache_misses();
  EXPECT_EQ(misses, 2);
  db_.ClearPlanCache();
  ASSERT_TRUE(db_.QueryXJoin("Q(*) := R, S", sharded).ok());
  EXPECT_EQ(db_.trie_cache_misses(), misses);
  EXPECT_GE(db_.trie_cache_hits(), 2);
}

}  // namespace
}  // namespace xjoin
