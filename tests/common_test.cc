#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/budget.h"
#include "common/cancel.h"
#include "common/dictionary.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/string_util.h"

namespace xjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("line 3").WithContext("file.csv");
  EXPECT_EQ(s.message(), "file.csv: line 3");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kIOError,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int64_t> ParsePositive(const std::string& s) {
  XJ_ASSIGN_OR_RETURN(int64_t v, ParseInt64(s));
  if (v <= 0) return Status::OutOfRange("not positive: " + s);
  return v;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.ValueOr(-1), 42);

  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(ParsePositive("17").ok());
  EXPECT_EQ(*ParsePositive("17"), 17);
  EXPECT_EQ(ParsePositive("-3").status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ParsePositive("xyz").status().code(), StatusCode::kParseError);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  int64_t a = d.Intern("apple");
  int64_t b = d.Intern("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("apple"), a);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.Decode(a), "apple");
  EXPECT_EQ(d.Decode(b), "banana");
}

TEST(DictionaryTest, LookupDoesNotInsert) {
  Dictionary d;
  EXPECT_EQ(d.Lookup("ghost"), -1);
  EXPECT_EQ(d.size(), 0);
  d.Intern("real");
  EXPECT_EQ(d.Lookup("real"), 0);
}

TEST(DictionaryTest, CodesAreDense) {
  Dictionary d;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.Intern("s" + std::to_string(i)), i);
  }
  EXPECT_TRUE(d.Contains(99));
  EXPECT_FALSE(d.Contains(100));
  EXPECT_FALSE(d.Contains(-1));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(8);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(9);
  ZipfGenerator zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 2000);  // rank 0 dominates under theta=1.2
}

TEST(ZipfTest, SingletonDomain) {
  Rng rng(10);
  ZipfGenerator zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(SplitString("a,b,c", ',').size(), 3u);
  EXPECT_EQ(SplitString("a,,c", ',')[1], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
  EXPECT_EQ(SplitString("x", ',')[0], "x");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("3.5z").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ParseUint64) {
  EXPECT_EQ(*ParseUint64("42"), 42u);
  EXPECT_EQ(*ParseUint64(" 1234 "), 1234u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
  // strtoull would silently wrap "-1"; the parser must reject signs.
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("+3").ok());
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64("banana").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // overflow
}

TEST(StringUtilTest, EnvUint64OrDefaultHandlesUnsetValidAndGarbage) {
  const char* kName = "XJOIN_TEST_ENV_U64";
  ::unsetenv(kName);
  EXPECT_EQ(EnvUint64OrDefault(kName, 7), 7u);
  ::setenv(kName, "1234", 1);
  EXPECT_EQ(EnvUint64OrDefault(kName, 7), 1234u);
  // A typo'd value must warn and fall back deterministically, not
  // silently become 0 (the old strtoull behavior).
  ::setenv(kName, "banana", 1);
  EXPECT_EQ(EnvUint64OrDefault(kName, 7), 7u);
  ::setenv(kName, "-3", 1);
  EXPECT_EQ(EnvUint64OrDefault(kName, 7), 7u);
  ::setenv(kName, "", 1);
  EXPECT_EQ(EnvUint64OrDefault(kName, 7), 7u);
  ::unsetenv(kName);
}

TEST(SimdTest, EnvCapParsesValidLevels) {
  EXPECT_EQ(SimdCapFromEnvValue("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(SimdCapFromEnvValue("sse42"), SimdLevel::kSse42);
  EXPECT_EQ(SimdCapFromEnvValue("sse4.2"), SimdLevel::kSse42);
  EXPECT_EQ(SimdCapFromEnvValue("avx2"), SimdLevel::kAvx2);
}

TEST(SimdTest, MalformedEnvCapWarnsAndLeavesDispatchUncapped) {
  // Garbage in XJOIN_SIMD must not cap dispatch (and must not crash);
  // the warning is logged once at first use.
  EXPECT_EQ(SimdCapFromEnvValue(nullptr), SimdLevel::kAvx2);
  EXPECT_EQ(SimdCapFromEnvValue(""), SimdLevel::kAvx2);
  EXPECT_EQ(SimdCapFromEnvValue("banana"), SimdLevel::kAvx2);
  EXPECT_EQ(SimdCapFromEnvValue("AVX2"), SimdLevel::kAvx2);  // case-sensitive
}

TEST(StatusTest, RetryInfoAttachesAndComparesEqual) {
  Status plain = Status::ResourceExhausted("full");
  EXPECT_FALSE(plain.retry_info().has_value());
  Status hinted = plain.WithRetryInfo(RetryInfo{5000, 3});
  ASSERT_TRUE(hinted.retry_info().has_value());
  EXPECT_EQ(hinted.retry_info()->retry_after_micros, 5000);
  EXPECT_EQ(hinted.retry_info()->queue_depth, 3);
  // retry_info participates in equality: a hinted status is not the
  // plain one.
  EXPECT_FALSE(plain == hinted);
  EXPECT_TRUE(hinted == plain.WithRetryInfo(RetryInfo{5000, 3}));
  // No-op on success.
  EXPECT_FALSE(Status::OK().WithRetryInfo(RetryInfo{1, 1}).retry_info());
}

TEST(StatusTest, WithContextPreservesRetryInfo) {
  Status st = Status::ResourceExhausted("pool full")
                  .WithRetryInfo(RetryInfo{2500, 8})
                  .WithContext("tenant admission");
  ASSERT_TRUE(st.retry_info().has_value());
  EXPECT_EQ(st.retry_info()->retry_after_micros, 2500);
  EXPECT_EQ(st.retry_info()->queue_depth, 8);
  EXPECT_EQ(st.message(), "tenant admission: pool full");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("@name", "@"));
  EXPECT_FALSE(StartsWith("", "@"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(MetricsTest, AddAndMax) {
  Metrics m;
  m.Add("x", 2);
  m.Add("x", 3);
  EXPECT_EQ(m.Get("x"), 5);
  EXPECT_EQ(m.Get("missing"), 0);
  m.RecordMax("peak", 10);
  m.RecordMax("peak", 4);
  EXPECT_EQ(m.Get("peak"), 10);
  m.RecordMax("peak", 12);
  EXPECT_EQ(m.Get("peak"), 12);
}

TEST(MetricsTest, NullSafeHelper) {
  MetricsAdd(nullptr, "x", 1);  // must not crash
  Metrics m;
  MetricsAdd(&m, "x", 1);
  EXPECT_EQ(m.Get("x"), 1);
}

TEST(MetricsTest, ToStringSortsByName) {
  Metrics m;
  m.Add("b", 2);
  m.Add("a", 1);
  EXPECT_EQ(m.ToString(), "a=1\nb=2\n");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  EXPECT_GE(t.ElapsedMicros(), 0);
  t.Restart();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(BudgetTest, RowLimitViolationNamesRowsAndTotals) {
  BudgetTracker budget(/*max_rows=*/10, /*max_bytes=*/0,
                       /*deadline_micros=*/0);
  EXPECT_TRUE(budget.limited());
  EXPECT_TRUE(budget.ChargeRows(10, 80));
  EXPECT_FALSE(budget.ChargeRows(5, 40));  // 15 > 10: sticky from here
  EXPECT_TRUE(budget.violated());
  Status status = budget.status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("max_rows=10"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("15 rows"), std::string::npos)
      << status.ToString();
}

TEST(BudgetTest, ByteLimitViolationNamesBytesNotRows) {
  // Regression: a max_bytes trip used to be misreported as the row
  // limit. The typed message must name the limit actually crossed.
  BudgetTracker budget(/*max_rows=*/0, /*max_bytes=*/100,
                       /*deadline_micros=*/0);
  EXPECT_FALSE(budget.ChargeRows(3, 200));
  Status status = budget.status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("max_bytes=100"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(status.message().find("max_rows"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("200 bytes"), std::string::npos)
      << status.ToString();
}

TEST(BudgetTest, UnlimitedTrackerStillCountsCharges) {
  BudgetTracker budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_TRUE(budget.ChargeRows(7, 56));
  EXPECT_FALSE(budget.violated());
  EXPECT_EQ(budget.rows_charged(), 7);
  EXPECT_EQ(budget.bytes_charged(), 56);
  EXPECT_TRUE(budget.status().ok());
}

TEST(BudgetTest, CancelSourceTripsViolatedAndYieldsTokenStatus) {
  CancellationToken token;
  BudgetTracker budget;
  EXPECT_FALSE(budget.limited());
  budget.AddCancelSource(&token);
  budget.AddCancelSource(&token);  // idempotent
  budget.AddCancelSource(nullptr);
  EXPECT_TRUE(budget.limited());
  EXPECT_TRUE(budget.has_cancel());
  EXPECT_FALSE(budget.violated());
  token.Cancel("caller hung up");
  EXPECT_TRUE(budget.violated());
  Status status = budget.status();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("caller hung up"), std::string::npos)
      << status.ToString();
}

TEST(BudgetTest, AggregateCeilingChargesAndReleases) {
  AggregateBudget aggregate("pool", /*max_rows=*/100, /*max_bytes=*/0);
  BudgetTracker first;
  BudgetTracker second;
  first.AttachAggregate(&aggregate);
  second.AttachAggregate(&aggregate);
  EXPECT_TRUE(first.limited());
  EXPECT_TRUE(first.ChargeRows(60, 480));
  // The second query pushes the pool-wide total over the ceiling even
  // though neither query is large on its own.
  EXPECT_FALSE(second.ChargeRows(60, 480));
  Status status = second.status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("tenant pool 'pool'"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(first.violated());  // only the crossing tracker trips
  EXPECT_EQ(aggregate.inflight_rows(), 120);
  aggregate.Release(first.rows_charged(), first.bytes_charged());
  aggregate.Release(second.rows_charged(), second.bytes_charged());
  EXPECT_EQ(aggregate.inflight_rows(), 0);
  EXPECT_EQ(aggregate.inflight_bytes(), 0);
}

TEST(CancellationTokenTest, FirstCancelWinsAndIsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel("first");
  token.Cancel("second");  // ignored: first reason is kept
  EXPECT_TRUE(token.cancelled());
  Status status = token.status();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("first"), std::string::npos);
  EXPECT_EQ(status.message().find("second"), std::string::npos);
}

TEST(FaultInjectorTest, FailAtTriggersOnNthHitAndAfter) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  faults.FailAt("test.site", 3);
  EXPECT_FALSE(faults.Hit("test.site"));
  EXPECT_FALSE(faults.Hit("test.site"));
  EXPECT_TRUE(faults.Hit("test.site"));
  EXPECT_TRUE(faults.Hit("test.site"));  // and every hit after
  EXPECT_FALSE(faults.Hit("other.site"));
  EXPECT_EQ(faults.hits("test.site"), 4);
  EXPECT_EQ(faults.hits("other.site"), 1);
  faults.Disarm();
  EXPECT_FALSE(faults.Hit("test.site"));
  EXPECT_EQ(faults.hits("test.site"), 1);  // counters reset too
}

TEST(FaultInjectorTest, SeededDecisionsReplayExactly) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  auto run = [&faults](uint64_t seed) {
    faults.Disarm();
    faults.SetSeed(seed, 0.3);
    std::vector<bool> decisions;
    for (int i = 0; i < 64; ++i) decisions.push_back(faults.Hit("a.site"));
    for (int i = 0; i < 64; ++i) decisions.push_back(faults.Hit("b.site"));
    return decisions;
  };
  std::vector<bool> first = run(7);
  std::vector<bool> replay = run(7);
  std::vector<bool> other = run(8);
  EXPECT_EQ(first, replay);
  EXPECT_NE(first, other);
  // p=0.3 over 128 draws: some fail, most don't.
  int fails = 0;
  for (bool b : first) fails += b ? 1 : 0;
  EXPECT_GT(fails, 0);
  EXPECT_LT(fails, 128);
}

TEST(FaultInjectorTest, HandlerObservesWithoutFailing) {
  ScopedFaultInjection scoped;
  FaultInjector& faults = FaultInjector::Global();
  std::vector<int64_t> observed;
  faults.SetHandler("watched.site",
                    [&observed](int64_t n) { observed.push_back(n); });
  EXPECT_FALSE(faults.Hit("watched.site"));
  EXPECT_FALSE(faults.Hit("watched.site"));
  EXPECT_EQ(observed, (std::vector<int64_t>{1, 2}));
}

}  // namespace
}  // namespace xjoin
