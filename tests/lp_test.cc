#include <gtest/gtest.h>

#include <cmath>

#include "lp/edge_cover.h"
#include "lp/hypergraph.h"
#include "lp/simplex.h"

namespace xjoin {
namespace {

constexpr double kTol = 1e-6;

LpConstraint Row(std::vector<double> coeffs, LpRelation rel, double rhs) {
  LpConstraint c;
  c.coeffs = std::move(coeffs);
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

TEST(SimplexTest, SimpleMaximize) {
  // max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  LpProblem p;
  p.sense = LpProblem::Sense::kMaximize;
  p.objective = {3, 2};
  p.constraints.push_back(Row({1, 1}, LpRelation::kLessEqual, 4));
  p.constraints.push_back(Row({1, 3}, LpRelation::kLessEqual, 6));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->optimal());
  EXPECT_NEAR(s->objective, 12.0, kTol);
  EXPECT_NEAR(s->values[0], 4.0, kTol);
  EXPECT_NEAR(s->values[1], 0.0, kTol);
}

TEST(SimplexTest, SimpleMinimizeWithGreaterEqual) {
  // min x + y st x + 2y >= 4, 3x + y >= 6 -> x=1.6, y=1.2, obj=2.8.
  LpProblem p;
  p.sense = LpProblem::Sense::kMinimize;
  p.objective = {1, 1};
  p.constraints.push_back(Row({1, 2}, LpRelation::kGreaterEqual, 4));
  p.constraints.push_back(Row({3, 1}, LpRelation::kGreaterEqual, 6));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->optimal());
  EXPECT_NEAR(s->objective, 2.8, kTol);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y st x + y = 3, x <= 2 -> obj 3.
  LpProblem p;
  p.sense = LpProblem::Sense::kMaximize;
  p.objective = {1, 1};
  p.constraints.push_back(Row({1, 1}, LpRelation::kEqual, 3));
  p.constraints.push_back(Row({1, 0}, LpRelation::kLessEqual, 2));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->optimal());
  EXPECT_NEAR(s->objective, 3.0, kTol);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2.
  LpProblem p;
  p.objective = {1};
  p.constraints.push_back(Row({1}, LpRelation::kLessEqual, 1));
  p.constraints.push_back(Row({1}, LpRelation::kGreaterEqual, 2));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->outcome, LpSolution::Outcome::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x with no constraints binding it.
  LpProblem p;
  p.sense = LpProblem::Sense::kMaximize;
  p.objective = {1};
  p.constraints.push_back(Row({1}, LpRelation::kGreaterEqual, 0));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->outcome, LpSolution::Outcome::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // min x st -x <= -2  (i.e. x >= 2).
  LpProblem p;
  p.objective = {1};
  p.constraints.push_back(Row({-1}, LpRelation::kLessEqual, -2));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->optimal());
  EXPECT_NEAR(s->objective, 2.0, kTol);
}

TEST(SimplexTest, DimensionMismatchRejected) {
  LpProblem p;
  p.objective = {1, 2};
  p.constraints.push_back(Row({1}, LpRelation::kLessEqual, 1));
  EXPECT_FALSE(SolveLp(p).ok());
}

TEST(SimplexTest, DegenerateRedundantConstraints) {
  // Duplicate constraints should not break phase 1/2.
  LpProblem p;
  p.sense = LpProblem::Sense::kMaximize;
  p.objective = {1, 1};
  for (int i = 0; i < 3; ++i) {
    p.constraints.push_back(Row({1, 1}, LpRelation::kLessEqual, 2));
  }
  p.constraints.push_back(Row({1, 0}, LpRelation::kEqual, 1));
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->optimal());
  EXPECT_NEAR(s->objective, 2.0, kTol);
}

TEST(HypergraphTest, AddAndQuery) {
  Hypergraph g;
  ASSERT_TRUE(g.AddEdge({"R", {"A", "B"}, 10}).ok());
  ASSERT_TRUE(g.AddEdge({"S", {"B", "C"}, 20}).ok());
  EXPECT_EQ(g.attributes(), (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(g.EdgesCovering("B"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(g.EdgesCovering("A"), (std::vector<size_t>{0}));
  EXPECT_EQ(g.AttributeIndex("C"), 2);
  EXPECT_EQ(g.AttributeIndex("Z"), -1);
}

TEST(HypergraphTest, RejectsBadEdges) {
  Hypergraph g;
  EXPECT_FALSE(g.AddEdge({"R", {}, 10}).ok());
  EXPECT_FALSE(g.AddEdge({"R", {"A", "A"}, 10}).ok());
  EXPECT_FALSE(g.AddEdge({"R", {"A"}, 0.5}).ok());
}

TEST(EdgeCoverTest, TriangleQuery) {
  // R(A,B), S(B,C), T(C,A), all size n: rho* = 1.5, bound = n^1.5.
  Hypergraph g;
  double n = 64.0;
  ASSERT_TRUE(g.AddEdge({"R", {"A", "B"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"S", {"B", "C"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"T", {"C", "A"}, n}).ok());
  auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->uniform_exponent, 1.5, kTol);
  EXPECT_NEAR(cover->log2_bound, 1.5 * std::log2(n), kTol);
  EXPECT_NEAR(cover->bound, std::pow(n, 1.5), 1e-3);
  // Dual feasibility: per edge sum of y_a <= log2(n).
  double y_sum = 0;
  for (double y : cover->attribute_weights) y_sum += y;
  EXPECT_NEAR(y_sum, cover->log2_bound, kTol);  // strong duality
}

TEST(EdgeCoverTest, ChainQueryUsesEndpoints) {
  // R(A,B), S(B,C): cover needs both edges: bound = |R|*|S|... no -
  // A needs R, C needs S, B covered by either: x_R = x_S = 1.
  Hypergraph g;
  ASSERT_TRUE(g.AddEdge({"R", {"A", "B"}, 8}).ok());
  ASSERT_TRUE(g.AddEdge({"S", {"B", "C"}, 16}).ok());
  auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->log2_bound, std::log2(8.0) + std::log2(16.0), kTol);
  EXPECT_NEAR(cover->uniform_exponent, 2.0, kTol);
}

TEST(EdgeCoverTest, ContainedEdgeIsFree) {
  // R(A,B,C) covers everything; S(B) adds nothing.
  Hypergraph g;
  ASSERT_TRUE(g.AddEdge({"R", {"A", "B", "C"}, 100}).ok());
  ASSERT_TRUE(g.AddEdge({"S", {"B"}, 5}).ok());
  auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->log2_bound, std::log2(100.0), kTol);
}

TEST(EdgeCoverTest, PaperExample33TwigOnly) {
  // Paths of Figure 2 with |each| = n: bound n^5 (Example 3.3).
  Hypergraph g;
  double n = 16.0;
  ASSERT_TRUE(g.AddEdge({"P1", {"A", "B"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P2", {"A", "D"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P3", {"C", "E"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P4", {"F", "H"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P5", {"G"}, n}).ok());
  auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->uniform_exponent, 5.0, kTol);
}

TEST(EdgeCoverTest, PaperExample33FullQuery) {
  // Adding R1(B,D), R2(F,G,H): bound n^3.5 (Example 3.3).
  Hypergraph g;
  double n = 16.0;
  ASSERT_TRUE(g.AddEdge({"R1", {"B", "D"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"R2", {"F", "G", "H"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P1", {"A", "B"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P2", {"A", "D"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P3", {"C", "E"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P4", {"F", "H"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P5", {"G"}, n}).ok());
  auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->uniform_exponent, 3.5, kTol);
}

TEST(EdgeCoverTest, PaperExample34FullQuery) {
  // R1(A,B,C,D), R2(E,F,G,H) + twig paths: bound n^2 (Example 3.4).
  Hypergraph g;
  double n = 16.0;
  ASSERT_TRUE(g.AddEdge({"R1", {"A", "B", "C", "D"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"R2", {"E", "F", "G", "H"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P1", {"A", "B"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P2", {"A", "D"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P3", {"C", "E"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P4", {"F", "H"}, n}).ok());
  ASSERT_TRUE(g.AddEdge({"P5", {"G"}, n}).ok());
  auto cover = SolveFractionalEdgeCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->uniform_exponent, 2.0, kTol);
}

TEST(EdgeCoverTest, SubsetBound) {
  Hypergraph g;
  ASSERT_TRUE(g.AddEdge({"R", {"A", "B"}, 4}).ok());
  ASSERT_TRUE(g.AddEdge({"S", {"B", "C"}, 8}).ok());
  auto just_b = Log2BoundForSubset(g, {"B"});
  ASSERT_TRUE(just_b.ok());
  EXPECT_NEAR(*just_b, 2.0, kTol);  // cheapest cover of B is R (log2 4)
  auto empty = Log2BoundForSubset(g, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_NEAR(*empty, 0.0, kTol);
  EXPECT_FALSE(Log2BoundForSubset(g, {"Z"}).ok());
}

TEST(EdgeCoverTest, EmptyHypergraphRejected) {
  Hypergraph g;
  EXPECT_FALSE(SolveFractionalEdgeCover(g).ok());
}

}  // namespace
}  // namespace xjoin
