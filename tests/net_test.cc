// Network front-end tests: wire-format round-trips (including hostile
// payload rejection), live loopback serving against XJoinServer
// (correctness vs in-process execution, health probes, typed errors,
// admission RetryInfo over the wire), overload shedding at the
// connection and in-flight ceilings with a retrying client honoring
// server hints, slow-client and idle eviction, and — in XJOIN_FAULTS
// builds — a seeded chaos matrix over every net.* fault site with
// post-chaos byte-identical verification.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"
#include "core/database.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace xjoin {
namespace {

using net::ClientOptions;
using net::ConnectTcp;
using net::DecodeErrorStatus;
using net::DecodeFrameHeader;
using net::DecodeHealthReply;
using net::DecodeQueryRequest;
using net::DecodeQueryResultSet;
using net::EncodeErrorStatus;
using net::EncodeFrameHeader;
using net::EncodeHealthReply;
using net::EncodeQueryRequest;
using net::EncodeQueryResultSet;
using net::FrameHeader;
using net::FrameType;
using net::HealthReply;
using net::kFrameHeaderSize;
using net::kFrameMagic;
using net::kMaxPayloadBytes;
using net::QueryRequest;
using net::QueryResultSet;
using net::ReadFrame;
using net::ServerOptions;
using net::ServerStats;
using net::SteadyNowMicros;
using net::WriteFrame;
using net::XJoinClient;
using net::XJoinServer;

// CSV for a two-column relation whose rows are (i, i % mod) for
// i in [0, n) — joins on the shared column name chain naturally.
std::string MakeCsv(const std::string& a, const std::string& b, int n,
                    int mod, int offset) {
  std::string csv = a + "," + b + "\n";
  for (int i = 0; i < n; ++i) {
    csv += std::to_string(i + offset) + "," +
           std::to_string((i + offset) % mod) + "\n";
  }
  return csv;
}

// Spins until `pred` holds or `timeout_micros` passes.
bool WaitFor(const std::function<bool()>& pred, int64_t timeout_micros) {
  const int64_t deadline = SteadyNowMicros() + timeout_micros;
  while (SteadyNowMicros() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Wire format (no sockets).

TEST(FrameTest, HeaderRoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kQuery, FrameType::kResult, FrameType::kError,
        FrameType::kPing, FrameType::kPong}) {
    FrameHeader header;
    header.type = type;
    header.payload_len = 12345;
    uint8_t wire[kFrameHeaderSize];
    EncodeFrameHeader(header, wire);
    auto decoded = DecodeFrameHeader(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->payload_len, 12345u);
    EXPECT_EQ(decoded->version, net::kProtocolVersion);
  }
}

TEST(FrameTest, HeaderRejectsEveryMalformedField) {
  FrameHeader header;
  header.type = FrameType::kQuery;
  header.payload_len = 4;
  uint8_t good[kFrameHeaderSize];
  EncodeFrameHeader(header, good);

  auto corrupt = [&](int offset, uint8_t value) {
    uint8_t bad[kFrameHeaderSize];
    std::copy(good, good + kFrameHeaderSize, bad);
    bad[offset] = value;
    return DecodeFrameHeader(bad);
  };

  EXPECT_FALSE(corrupt(0, 0x00).ok()) << "bad magic must be rejected";
  EXPECT_FALSE(corrupt(4, 99).ok()) << "unknown version must be rejected";
  EXPECT_FALSE(corrupt(5, 0).ok()) << "frame type 0 must be rejected";
  EXPECT_FALSE(corrupt(5, 200).ok()) << "unknown frame type must be rejected";
  EXPECT_FALSE(corrupt(6, 1).ok()) << "reserved bits must be zero";
  EXPECT_FALSE(corrupt(7, 0xff).ok()) << "reserved bits must be zero";
  // Payload length over the 64 MiB cap.
  uint8_t oversize[kFrameHeaderSize];
  std::copy(good, good + kFrameHeaderSize, oversize);
  const uint32_t too_big = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) oversize[8 + i] = (too_big >> (8 * i)) & 0xff;
  EXPECT_FALSE(DecodeFrameHeader(oversize).ok());
}

TEST(FrameTest, QueryRequestRoundTripsAndRejectsDamage) {
  QueryRequest req;
  req.text = "Q(*) := R, S";
  req.tenant = "acme";
  req.max_rows = 1000;
  req.max_bytes = 1 << 20;
  req.deadline_micros = 5'000'000;
  const std::string wire = EncodeQueryRequest(req);

  auto decoded = DecodeQueryRequest(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->text, req.text);
  EXPECT_EQ(decoded->tenant, req.tenant);
  EXPECT_EQ(decoded->max_rows, req.max_rows);
  EXPECT_EQ(decoded->max_bytes, req.max_bytes);
  EXPECT_EQ(decoded->deadline_micros, req.deadline_micros);

  // Truncation at every prefix length fails typed, never crashes.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto damaged = DecodeQueryRequest(std::string_view(wire.data(), cut));
    EXPECT_FALSE(damaged.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(damaged.status().code(), StatusCode::kParseError);
  }
  // Trailing bytes mean a format mismatch and are rejected too.
  EXPECT_FALSE(DecodeQueryRequest(wire + "x").ok());
}

TEST(FrameTest, QueryResultSetRoundTripsIncludingEmpty) {
  QueryResultSet rs;
  rs.columns = {"A", "B", "C"};
  rs.rows = {{"1", "2", "3"}, {"", "yes", "42"}};
  auto wire = EncodeQueryResultSet(rs);
  ASSERT_TRUE(wire.ok());
  auto decoded = DecodeQueryResultSet(*wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->columns, rs.columns);
  EXPECT_EQ(decoded->rows, rs.rows);

  QueryResultSet empty;
  auto empty_wire = EncodeQueryResultSet(empty);
  ASSERT_TRUE(empty_wire.ok());
  auto empty_decoded = DecodeQueryResultSet(*empty_wire);
  ASSERT_TRUE(empty_decoded.ok());
  EXPECT_TRUE(empty_decoded->columns.empty());
  EXPECT_TRUE(empty_decoded->rows.empty());
}

TEST(FrameTest, QueryResultSetRejectsHostileRowCount) {
  // A tiny payload claiming 2^40 rows must be rejected before any
  // allocation proportional to the claimed count.
  QueryResultSet rs;
  rs.columns = {"A"};
  rs.rows = {{"1"}};
  auto wire = EncodeQueryResultSet(rs);
  ASSERT_TRUE(wire.ok());
  std::string hostile = *wire;
  // The row count is the u64 right after the column block.
  const size_t count_at = 4 + 4 + 1;  // num_columns, len("A"), "A"
  const uint64_t absurd = uint64_t{1} << 40;
  for (int i = 0; i < 8; ++i) {
    hostile[count_at + i] = static_cast<char>((absurd >> (8 * i)) & 0xff);
  }
  auto decoded = DecodeQueryResultSet(hostile);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(FrameTest, OversizeResultSetFailsEncodeWithTypedStatus) {
  QueryResultSet rs;
  rs.columns = {"blob"};
  const std::string big(16u << 20, 'x');
  for (int i = 0; i < 5; ++i) rs.rows.push_back({big});
  auto wire = EncodeQueryResultSet(rs);
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), StatusCode::kResourceExhausted);
}

TEST(FrameTest, ErrorStatusRoundTripsWithAndWithoutRetryInfo) {
  const Status plain = Status::InvalidArgument("no such relation: Z");
  Status decoded;
  ASSERT_TRUE(DecodeErrorStatus(EncodeErrorStatus(plain), &decoded).ok());
  EXPECT_EQ(decoded, plain);
  EXPECT_FALSE(decoded.retry_info().has_value());

  const Status shed =
      Status::ResourceExhausted("tenant pool saturated")
          .WithRetryInfo(RetryInfo{/*retry_after_micros=*/75'000,
                                   /*queue_depth=*/3});
  ASSERT_TRUE(DecodeErrorStatus(EncodeErrorStatus(shed), &decoded).ok());
  EXPECT_EQ(decoded, shed);
  ASSERT_TRUE(decoded.retry_info().has_value());
  EXPECT_EQ(decoded.retry_info()->retry_after_micros, 75'000);
  EXPECT_EQ(decoded.retry_info()->queue_depth, 3);

  // A status code outside the enum range is a protocol violation.
  std::string forged = EncodeErrorStatus(plain);
  forged[0] = static_cast<char>(250);
  EXPECT_FALSE(DecodeErrorStatus(forged, &decoded).ok());
}

TEST(FrameTest, HealthReplyRoundTrips) {
  HealthReply health;
  health.draining = true;
  health.active_connections = 7;
  health.inflight = 2;
  health.served = 12345;
  health.shed = 67;
  auto decoded = DecodeHealthReply(EncodeHealthReply(health));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->draining);
  EXPECT_EQ(decoded->active_connections, 7);
  EXPECT_EQ(decoded->inflight, 2);
  EXPECT_EQ(decoded->served, 12345);
  EXPECT_EQ(decoded->shed, 67);
}

// ---------------------------------------------------------------------------
// Live loopback serving.

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterRelationCsv("R", MakeCsv("A", "B", 60, 7, 0)).ok());
    ASSERT_TRUE(db_.RegisterRelationCsv("S", MakeCsv("B", "C", 60, 7, 0)).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown(/*drain_deadline_micros=*/0);
  }

  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<XJoinServer>(&db_, options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  /// Registers the large relations behind the deliberately slow
  /// blocker join (~3M output rows) used to hold a worker busy.
  void RegisterBlockerRelations() {
    ASSERT_TRUE(
        db_.RegisterRelationCsv("RB", MakeCsv("A", "B", 3000, 3, 0)).ok());
    ASSERT_TRUE(
        db_.RegisterRelationCsv("SB", MakeCsv("C", "B", 3000, 3, 0)).ok());
  }

  ClientOptions MakeClientOptions(int max_attempts = 4) const {
    ClientOptions options;
    options.port = server_->port();
    options.max_attempts = max_attempts;
    options.backoff_base_micros = 500;
    options.backoff_cap_micros = 20'000;
    return options;
  }

  /// The in-process answer for `query`, decoded exactly the way the
  /// server decodes rows for the wire.
  std::vector<std::vector<std::string>> ExpectedRows(
      const std::string& query) {
    auto result = db_.OpenSession().Query(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::vector<std::string>> rows;
    if (!result.ok()) return rows;
    const Dictionary& dict = db_.dictionary();
    for (size_t r = 0; r < result->num_rows(); ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < result->num_columns(); ++c) {
        const int64_t code = result->at(r, c);
        row.push_back(dict.Contains(code) ? dict.Decode(code)
                                          : "#" + std::to_string(code));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }

  /// Raw connected socket to the server (caller closes).
  int RawConnect() {
    auto fd = ConnectTcp("127.0.0.1", server_->port(),
                         SteadyNowMicros() + 2'000'000);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  MultiModelDatabase db_;
  std::unique_ptr<XJoinServer> server_;
  const std::string q_ = "Q(*) := R, S";
};

TEST_F(NetTest, QueryOverLoopbackMatchesInProcessExecution) {
  StartServer();
  const auto expected = ExpectedRows(q_);
  ASSERT_FALSE(expected.empty());

  XJoinClient client(MakeClientOptions());
  QueryRequest request;
  request.text = q_;
  auto result = client.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows, expected);
  ASSERT_EQ(result->columns.size(), expected[0].size());

  // served_ok increments just after the response write syscall, so the
  // client can observe the reply first: wait, don't assert instantly.
  EXPECT_TRUE(
      WaitFor([&] { return server_->stats().served_ok == 1; }, 2'000'000));
  EXPECT_EQ(server_->stats().accepted, 1);
  EXPECT_EQ(client.stats().retries, 0);
}

TEST_F(NetTest, OneConnectionServesManyRequestsAndPings) {
  StartServer();
  const auto expected = ExpectedRows(q_);
  XJoinClient client(MakeClientOptions());
  QueryRequest request;
  request.text = q_;
  for (int i = 0; i < 5; ++i) {
    auto result = client.Query(request);
    ASSERT_TRUE(result.ok()) << "request " << i << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->rows, expected);
    // Let the worker's served_ok increment land before probing health.
    ASSERT_TRUE(WaitFor(
        [&] { return server_->stats().served_ok == i + 1; }, 2'000'000));
    auto health = client.Ping();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_FALSE(health->draining);
    EXPECT_EQ(health->served, i + 1);
  }
  // All eleven frames rode one TCP connection.
  EXPECT_EQ(client.stats().reconnects, 1);
  EXPECT_EQ(server_->stats().accepted, 1);
  EXPECT_EQ(server_->stats().pings, 5);
}

TEST_F(NetTest, BadQueryTextGetsTypedErrorAndConnectionSurvives) {
  StartServer();
  XJoinClient client(MakeClientOptions());
  QueryRequest bad;
  bad.text = "Q(*) := NoSuchRelation";
  auto result = client.Query(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
      << result.status().ToString();
  // A semantic failure is not retryable: one attempt, no backoff.
  EXPECT_EQ(client.stats().retries, 0);

  // The same connection keeps serving.
  QueryRequest good;
  good.text = q_;
  EXPECT_TRUE(client.Query(good).ok());
  EXPECT_EQ(client.stats().reconnects, 1);
}

TEST_F(NetTest, MalformedQueryPayloadGetsTypedErrorAndKeepsConnection) {
  StartServer();
  const int fd = RawConnect();
  ASSERT_GE(fd, 0);
  const int64_t deadline = SteadyNowMicros() + 5'000'000;
  // Intact header, garbage payload: typed kInvalidArgument, stream
  // stays usable.
  ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery, "\x01", deadline).ok());
  auto reply = ReadFrame(fd, deadline);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->first.type, FrameType::kError);
  Status error;
  ASSERT_TRUE(DecodeErrorStatus(reply->second, &error).ok());
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument) << error.ToString();

  ASSERT_TRUE(WriteFrame(fd, FrameType::kPing, "", deadline).ok());
  auto pong = ReadFrame(fd, deadline);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->first.type, FrameType::kPong);
  ::close(fd);
}

TEST_F(NetTest, GarbageHeaderPoisonsTheStream) {
  StartServer();
  const int fd = RawConnect();
  ASSERT_GE(fd, 0);
  const uint8_t junk[kFrameHeaderSize] = {'G', 'E', 'T', ' ', '/', ' ',
                                          'H', 'T', 'T', 'P', '/', '1'};
  ASSERT_TRUE(
      net::WriteFull(fd, junk, sizeof(junk), SteadyNowMicros() + 2'000'000)
          .ok());
  // The server closes without a reply: the next read sees EOF.
  auto reply = ReadFrame(fd, SteadyNowMicros() + 5'000'000);
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().bad_frames >= 1; },
                      2'000'000));
  ::close(fd);
}

TEST_F(NetTest, ServerFrameTypesAreRejectedWhenSentByAClient) {
  StartServer();
  const int fd = RawConnect();
  ASSERT_GE(fd, 0);
  // kResult arriving at the server is a protocol violation: close.
  ASSERT_TRUE(WriteFrame(fd, FrameType::kResult, "",
                         SteadyNowMicros() + 2'000'000)
                  .ok());
  auto reply = ReadFrame(fd, SteadyNowMicros() + 5'000'000);
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().bad_frames >= 1; },
                      2'000'000));
  ::close(fd);
}

TEST_F(NetTest, ConnectionCeilingShedsWithRetryHint) {
  ServerOptions options;
  options.max_connections = 1;
  options.shed_retry_after_micros = 33'000;
  StartServer(options);

  XJoinClient keeper(MakeClientOptions());
  ASSERT_TRUE(keeper.Ping().ok());  // occupies the single slot

  const int fd = RawConnect();
  ASSERT_GE(fd, 0);
  auto reply = ReadFrame(fd, SteadyNowMicros() + 5'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->first.type, FrameType::kError);
  Status shed;
  ASSERT_TRUE(DecodeErrorStatus(reply->second, &shed).ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed.ToString();
  ASSERT_TRUE(shed.retry_info().has_value());
  EXPECT_EQ(shed.retry_info()->retry_after_micros, 33'000);
  // After the shed error the server closes this connection.
  EXPECT_FALSE(ReadFrame(fd, SteadyNowMicros() + 5'000'000).ok());
  ::close(fd);
  EXPECT_EQ(server_->stats().rejected_conn_limit, 1);

  // The established connection is unaffected.
  EXPECT_TRUE(keeper.Ping().ok());
}

TEST_F(NetTest, InflightCeilingShedsAndRetryingClientEventuallySucceeds) {
  RegisterBlockerRelations();
  ServerOptions options;
  options.num_workers = 1;
  options.max_inflight = 1;
  options.shed_retry_after_micros = 5'000;
  StartServer(options);
  const auto expected = ExpectedRows(q_);

  // Occupy the single in-flight slot with the slow blocker join.
  const int blocker = RawConnect();
  ASSERT_GE(blocker, 0);
  QueryRequest slow;
  slow.text = "QB(*) := RB, SB";
  ASSERT_TRUE(WriteFrame(blocker, FrameType::kQuery, EncodeQueryRequest(slow),
                         SteadyNowMicros() + 2'000'000)
                  .ok());
  ASSERT_TRUE(WaitFor([&] { return server_->stats().inflight >= 1; },
                      5'000'000))
      << "blocker query never started executing";

  // A single-attempt client is shed with the machine-readable hint.
  XJoinClient once(MakeClientOptions(/*max_attempts=*/1));
  QueryRequest request;
  request.text = q_;
  auto shed = once.Query(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted)
      << shed.status().ToString();
  ASSERT_TRUE(shed.status().retry_info().has_value());
  EXPECT_EQ(shed.status().retry_info()->retry_after_micros, 5'000);
  EXPECT_GE(server_->stats().shed_inflight, 1);

  // Disconnecting the blocker cancels its query cooperatively, which
  // frees the slot for the retrying client.
  ::close(blocker);
  XJoinClient retrying(MakeClientOptions(/*max_attempts=*/50));
  auto result = retrying.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows, expected);
  EXPECT_TRUE(WaitFor(
      [&] { return server_->stats().cancelled_disconnect >= 1; }, 5'000'000));
  // The retry loop consumed the hint at least once unless the slot
  // freed before the first attempt; either way nothing hung.
  EXPECT_GE(retrying.stats().requests, 1);
}

TEST_F(NetTest, TenantPoolRejectionCarriesRetryInfoOverTheWire) {
  RegisterBlockerRelations();
  TenantPoolOptions pool;
  pool.max_concurrent = 1;
  pool.max_queue_depth = 0;  // saturation rejects immediately
  pool.queue_deadline_micros = 40'000;
  ASSERT_TRUE(db_.CreateTenantPool("acme", pool).ok());
  StartServer();

  const int blocker = RawConnect();
  ASSERT_GE(blocker, 0);
  QueryRequest slow;
  slow.text = "QB(*) := RB, SB";
  slow.tenant = "acme";
  ASSERT_TRUE(WriteFrame(blocker, FrameType::kQuery, EncodeQueryRequest(slow),
                         SteadyNowMicros() + 2'000'000)
                  .ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*db_.tenant_pool_stats("acme")).running >= 1; },
      5'000'000))
      << "blocker never occupied the tenant pool";

  // The pool's typed rejection — produced deep inside the database —
  // arrives at the client with its RetryInfo intact.
  XJoinClient once(MakeClientOptions(/*max_attempts=*/1));
  QueryRequest request;
  request.text = q_;
  request.tenant = "acme";
  auto rejected = once.Query(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  ASSERT_TRUE(rejected.status().retry_info().has_value());
  EXPECT_EQ(rejected.status().retry_info()->retry_after_micros, 40'000);
  ::close(blocker);
}

TEST_F(NetTest, SlowClientIsEvicted) {
  ServerOptions options;
  options.read_timeout_micros = 50'000;
  StartServer(options);
  const int fd = RawConnect();
  ASSERT_GE(fd, 0);
  // Four header bytes, then silence: the read deadline fires and the
  // server closes the connection.
  const uint32_t magic = kFrameMagic;
  uint8_t partial[4];
  for (int i = 0; i < 4; ++i) partial[i] = (magic >> (8 * i)) & 0xff;
  ASSERT_TRUE(
      net::WriteFull(fd, partial, 4, SteadyNowMicros() + 2'000'000).ok());
  auto reply = ReadFrame(fd, SteadyNowMicros() + 5'000'000);
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().evicted_slow >= 1; },
                      2'000'000));
  ::close(fd);
}

TEST_F(NetTest, IdleConnectionsAreEvictedWhenConfigured) {
  ServerOptions options;
  options.idle_timeout_micros = 50'000;
  StartServer(options);
  const int fd = RawConnect();
  ASSERT_GE(fd, 0);
  const int64_t deadline = SteadyNowMicros() + 5'000'000;
  ASSERT_TRUE(WriteFrame(fd, FrameType::kPing, "", deadline).ok());
  ASSERT_TRUE(ReadFrame(fd, deadline).ok());
  // No follow-up traffic: the idle sweep reclaims the connection.
  EXPECT_FALSE(ReadFrame(fd, SteadyNowMicros() + 5'000'000).ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().evicted_slow >= 1; },
                      2'000'000));
  ::close(fd);
}

TEST_F(NetTest, ShutdownIsIdempotentAndStopsAccepting) {
  StartServer();
  XJoinClient client(MakeClientOptions(/*max_attempts=*/1));
  ASSERT_TRUE(client.Ping().ok());
  const int port = server_->port();
  server_->Shutdown();
  server_->Shutdown();  // second call is a no-op
  EXPECT_TRUE(server_->draining());
  auto fd = ConnectTcp("127.0.0.1", port, SteadyNowMicros() + 500'000);
  if (fd.ok()) {
    // A racing connect may be accepted by the kernel backlog before
    // the listener closed; it must at least never be served.
    EXPECT_FALSE(
        ReadFrame(*fd, SteadyNowMicros() + 1'000'000).ok());
    ::close(*fd);
  }
}

#ifdef XJOIN_FAULTS_ENABLED
// ---------------------------------------------------------------------------
// Deterministic network fault injection (XJOIN_FAULTS=ON builds only).

TEST_F(NetTest, EachNetFaultSiteFailsTypedAndServerRecovers) {
  // FailAt arms a site to fail its Nth hit and every hit after, so a
  // retrying client cannot ride it out — what must hold is that every
  // armed site degrades to a clean typed error (no hang, no crash) and
  // the server serves correct bytes again the moment the fault clears.
  StartServer();
  const auto expected = ExpectedRows(q_);
  for (const char* site :
       {"net.accept", "net.read", "net.write", "net.drop_response"}) {
    ScopedFaultInjection scoped;
    FaultInjector::Global().FailAt(site, 1);
    {
      XJoinClient client(MakeClientOptions(/*max_attempts=*/2));
      QueryRequest request;
      request.text = q_;
      auto result = client.Query(request);
      ASSERT_FALSE(result.ok()) << "site " << site << " never fired";
      EXPECT_GE(FaultInjector::Global().hits(site), 1) << "site " << site;
      EXPECT_FALSE(result.status().message().empty());
    }
    FaultInjector::Global().Disarm();
    XJoinClient calm(MakeClientOptions());
    QueryRequest request;
    request.text = q_;
    auto result = calm.Query(request);
    ASSERT_TRUE(result.ok())
        << "site " << site << " after disarm: " << result.status().ToString();
    EXPECT_EQ(result->rows, expected) << "site " << site;
  }
}

TEST_F(NetTest, SeededChaosMatrixNeverHangsAndRecoversByteIdentical) {
  // The acceptance chaos matrix: every fault site armed at p=0.05
  // across seeds {1, 7, 42, 1234} (CI adds an env-provided seed),
  // against a live loopback server. Every request must end in either
  // the exact correct rows or a clean typed error — never a hang, a
  // crash, or a torn result — and after the storm a fresh connection
  // answers byte-identically.
  StartServer();
  const auto expected = ExpectedRows(q_);
  ASSERT_FALSE(expected.empty());

  std::vector<uint64_t> seeds = {1, 7, 42, 1234};
  const uint64_t env_seed = EnvUint64OrDefault("XJOIN_FAULT_SEED", 0);
  if (env_seed != 0) seeds.push_back(env_seed);

  for (const uint64_t seed : seeds) {
    ScopedFaultInjection scoped;
    FaultInjector::Global().SetSeed(seed, 0.05);
    XJoinClient client(MakeClientOptions(/*max_attempts=*/4));
    for (int i = 0; i < 25; ++i) {
      if (i % 7 == 0) db_.ClearTrieCache();  // rebuilds through faults
      QueryRequest request;
      request.text = q_;
      auto result = client.Query(request);
      if (result.ok()) {
        EXPECT_EQ(result->rows, expected) << "seed " << seed << " it " << i;
      } else {
        const StatusCode code = result.status().code();
        EXPECT_TRUE(code == StatusCode::kInternal ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kCancelled ||
                    code == StatusCode::kIOError ||
                    code == StatusCode::kDeadlineExceeded)
            << "seed " << seed << " it " << i << ": "
            << result.status().ToString();
      }
    }
  }

  // Post-chaos: a fresh connection answers byte-identically.
  FaultInjector::Global().Disarm();
  XJoinClient calm(MakeClientOptions());
  QueryRequest request;
  request.text = q_;
  auto result = calm.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows, expected);
}
#endif  // XJOIN_FAULTS_ENABLED

}  // namespace
}  // namespace xjoin
