// Shared helpers for the xjoin test suite: deterministic random
// documents, twigs, relations, and reference (brute-force) evaluators
// used for differential testing.
#ifndef XJOIN_TESTS_TEST_UTIL_H_
#define XJOIN_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/dictionary.h"
#include "common/random.h"
#include "relational/relation.h"
#include "xml/document.h"
#include "xml/node_index.h"
#include "xml/twig.h"

namespace xjoin::testing {

/// Builds a random tree document: `num_nodes` elements, tags drawn from
/// `tags`, text values drawn from "v0".."v{num_values-1}" (with
/// probability `text_prob`, else no text). Shape is a random recursive
/// tree (each new node attaches to a uniformly chosen previous node).
inline std::unique_ptr<XmlDocument> RandomDocument(
    Rng* rng, size_t num_nodes, const std::vector<std::string>& tags,
    size_t num_values, double text_prob = 0.8) {
  // Generate parent links first (node 0 = root), then emit recursively.
  std::vector<size_t> parent(num_nodes, 0);
  for (size_t i = 1; i < num_nodes; ++i) {
    parent[i] = rng->NextBounded(i);
  }
  std::vector<std::vector<size_t>> children(num_nodes);
  for (size_t i = 1; i < num_nodes; ++i) children[parent[i]].push_back(i);

  XmlDocumentBuilder b;
  // Iterative preorder emission.
  struct Frame {
    size_t node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  auto open = [&](size_t node) {
    b.StartElement(node == 0 ? "root" : tags[rng->NextBounded(tags.size())]);
    if (node != 0 && rng->NextBernoulli(text_prob)) {
      b.AddText("v" + std::to_string(rng->NextBounded(num_values)));
    }
    stack.push_back({node, 0});
  };
  open(0);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child < children[top.node].size()) {
      open(children[top.node][top.next_child++]);
    } else {
      auto st = b.EndElement();
      (void)st;
      stack.pop_back();
    }
  }
  auto doc = b.Finish();
  return std::make_unique<XmlDocument>(*std::move(doc));
}

/// Builds a random twig with `num_nodes` query nodes over `tags`,
/// random axes (descendant with probability `ad_prob`). Attributes are
/// "q0".."q{k-1}" so repeated tags stay legal.
inline Twig RandomTwig(Rng* rng, size_t num_nodes,
                       const std::vector<std::string>& tags,
                       double ad_prob = 0.3) {
  TwigBuilder b;
  b.AddRoot(tags[rng->NextBounded(tags.size())], "q0");
  for (size_t i = 1; i < num_nodes; ++i) {
    TwigNodeId parent = static_cast<TwigNodeId>(rng->NextBounded(i));
    TwigAxis axis = rng->NextBernoulli(ad_prob) ? TwigAxis::kDescendant
                                                : TwigAxis::kChild;
    b.AddChild(parent, axis, tags[rng->NextBounded(tags.size())],
               "q" + std::to_string(i));
  }
  auto twig = b.Finish();
  return *std::move(twig);
}

/// Builds a random relation over `attrs` whose values are drawn from the
/// document value pool "v0".."v{num_values-1}" (interned in `dict`).
inline Relation RandomRelation(Rng* rng, Dictionary* dict,
                               const std::vector<std::string>& attrs,
                               size_t rows, size_t num_values) {
  auto schema = Schema::Make(attrs);
  Relation rel(*schema);
  Tuple row(attrs.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < attrs.size(); ++c) {
      row[c] = dict->Intern("v" + std::to_string(rng->NextBounded(num_values)));
    }
    rel.AppendRow(row);
  }
  return rel;
}

/// Brute-force natural join of arbitrary relations (nested loops),
/// returning distinct tuples over the union of attributes in
/// first-appearance order. Reference implementation for differential
/// tests.
Relation NaiveNaturalJoin(const std::vector<const Relation*>& inputs);

}  // namespace xjoin::testing

#endif  // XJOIN_TESTS_TEST_UTIL_H_
