#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "relational/operators.h"
#include "relational/trie.h"
#include "tests/test_util.h"

namespace xjoin {
namespace {

Relation SmallRelation() {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  r.AppendRow({1, 10});
  r.AppendRow({1, 20});
  r.AppendRow({2, 10});
  r.AppendRow({2, 10});  // duplicate
  r.AppendRow({5, 7});
  return r;
}

// Enumerates all tuples of a trie through its iterator protocol.
std::vector<Tuple> EnumerateTrie(TrieIterator* it) {
  std::vector<Tuple> out;
  Tuple current(static_cast<size_t>(it->arity()));
  auto recurse = [&](auto&& self) -> void {
    it->Open();
    while (!it->AtEnd()) {
      current[static_cast<size_t>(it->depth())] = it->Key();
      if (it->depth() + 1 == it->arity()) {
        out.push_back(current);
      } else {
        self(self);
      }
      it->Next();
    }
    it->Up();
  };
  recurse(recurse);
  return out;
}

TEST(RelationTrieTest, BuildSortsAndDedups) {
  auto trie = RelationTrie::Build(SmallRelation(), {"A", "B"});
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_rows(), 4u);
  // CSR layout: level 0 holds the distinct A keys, level 1 the distinct
  // B keys per A parent, child_begin the offsets between them.
  EXPECT_EQ(trie->level_keys(0), (std::vector<int64_t>{1, 2, 5}));
  EXPECT_EQ(trie->level_keys(1), (std::vector<int64_t>{10, 20, 10, 7}));
  EXPECT_EQ(trie->child_begin(0), (std::vector<size_t>{0, 2, 3, 4}));
}

TEST(RelationTrieTest, BuildWithPermutedOrder) {
  auto trie = RelationTrie::Build(SmallRelation(), {"B", "A"});
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->attribute_order(),
            (std::vector<std::string>{"B", "A"}));
  EXPECT_EQ(trie->level_keys(0), (std::vector<int64_t>{7, 10, 20}));
  EXPECT_EQ(trie->level_keys(1), (std::vector<int64_t>{5, 1, 2, 1}));
  EXPECT_EQ(trie->child_begin(0), (std::vector<size_t>{0, 1, 3, 4}));
}

TEST(RelationTrieTest, BuildRejectsBadOrders) {
  EXPECT_FALSE(RelationTrie::Build(SmallRelation(), {"A"}).ok());
  EXPECT_FALSE(RelationTrie::Build(SmallRelation(), {"A", "Z"}).ok());
  EXPECT_FALSE(RelationTrie::Build(SmallRelation(), {"A", "A"}).ok());
}

TEST(RelationTrieIteratorTest, WalksDistinctKeysPerLevel) {
  auto trie = RelationTrie::Build(SmallRelation(), {"A", "B"});
  auto it = trie->NewIterator();
  EXPECT_EQ(it->depth(), -1);
  it->Open();
  EXPECT_EQ(it->depth(), 0);
  EXPECT_EQ(it->Key(), 1);
  it->Next();
  EXPECT_EQ(it->Key(), 2);
  it->Next();
  EXPECT_EQ(it->Key(), 5);
  it->Next();
  EXPECT_TRUE(it->AtEnd());
  it->Up();
  EXPECT_EQ(it->depth(), -1);
}

TEST(RelationTrieIteratorTest, OpenDescendsIntoGroup) {
  auto trie = RelationTrie::Build(SmallRelation(), {"A", "B"});
  auto it = trie->NewIterator();
  it->Open();           // A level at key 1
  it->Open();           // B level under A=1
  EXPECT_EQ(it->Key(), 10);
  it->Next();
  EXPECT_EQ(it->Key(), 20);
  it->Next();
  EXPECT_TRUE(it->AtEnd());
  it->Up();
  it->Next();           // A=2
  it->Open();
  EXPECT_EQ(it->Key(), 10);
  it->Next();
  EXPECT_TRUE(it->AtEnd());
}

TEST(RelationTrieIteratorTest, SeekFindsLeastGreaterOrEqual) {
  auto trie = RelationTrie::Build(SmallRelation(), {"A", "B"});
  auto it = trie->NewIterator();
  it->Open();
  it->Seek(2);
  EXPECT_EQ(it->Key(), 2);
  it->Seek(3);
  EXPECT_EQ(it->Key(), 5);
  it->Seek(6);
  EXPECT_TRUE(it->AtEnd());
}

TEST(RelationTrieIteratorTest, EstimateKeysShrinks) {
  auto trie = RelationTrie::Build(SmallRelation(), {"A", "B"});
  auto it = trie->NewIterator();
  it->Open();
  int64_t first = it->EstimateKeys();
  it->Next();
  EXPECT_LE(it->EstimateKeys(), first);
}

TEST(RelationTrieIteratorTest, EmptyRelation) {
  auto s = Schema::Make({"A", "B"});
  Relation r(*s);
  auto trie = RelationTrie::Build(r, {"A", "B"});
  auto it = trie->NewIterator();
  it->Open();
  EXPECT_TRUE(it->AtEnd());
}

// Property: enumerating the trie yields exactly the sorted distinct
// tuples of the relation, for random relations and random orders.
class TrieEnumerationProperty : public ::testing::TestWithParam<int> {};

TEST_P(TrieEnumerationProperty, MatchesSortedDistinctTuples) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Dictionary dict;
  size_t arity = 1 + rng.NextBounded(4);
  std::vector<std::string> attrs;
  for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
  Relation rel = testing::RandomRelation(&rng, &dict, attrs,
                                         rng.NextBounded(60), 5);
  std::vector<std::string> order = attrs;
  rng.Shuffle(&order);

  auto trie = RelationTrie::Build(rel, order);
  ASSERT_TRUE(trie.ok());
  auto it = trie->NewIterator();
  std::vector<Tuple> enumerated = EnumerateTrie(it.get());

  // Reference: project relation onto `order` then sort+dedup.
  auto expected = Project(rel, order);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(enumerated.size(), expected->num_rows());
  for (size_t r = 0; r < enumerated.size(); ++r) {
    EXPECT_EQ(enumerated[r], expected->GetRow(r));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TrieEnumerationProperty,
                         ::testing::Range(0, 25));

// Property: Seek on a level is equivalent to Next-ing until >= key.
class TrieSeekProperty : public ::testing::TestWithParam<int> {};

TEST_P(TrieSeekProperty, SeekEqualsLinearScan) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  Dictionary dict;
  Relation rel =
      testing::RandomRelation(&rng, &dict, {"a0", "a1"}, 50, 8);
  auto trie = RelationTrie::Build(rel, {"a0", "a1"});
  ASSERT_TRUE(trie.ok());

  for (int trial = 0; trial < 20; ++trial) {
    int64_t target = static_cast<int64_t>(rng.NextBounded(10));
    auto via_seek = trie->NewIterator();
    via_seek->Open();
    if (via_seek->AtEnd()) break;
    if (via_seek->Key() <= target) via_seek->Seek(target);

    auto via_next = trie->NewIterator();
    via_next->Open();
    while (!via_next->AtEnd() && via_next->Key() < target) via_next->Next();

    EXPECT_EQ(via_seek->AtEnd(), via_next->AtEnd());
    if (!via_seek->AtEnd()) {
      EXPECT_EQ(via_seek->Key(), via_next->Key());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TrieSeekProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace xjoin
