// Figure 2 / Example 3.3: the twig-to-relations transformation and the
// LP size bounds. Prints the decomposition of the paper twig, then the
// uniform-n bound exponents the paper derives analytically:
//   twig alone            -> n^5
//   Example 3.3 query     -> n^3.5   (R1(B,D), R2(F,G,H))
//   Example 3.4 query     -> n^2     (R1(A,B,C,D), R2(E,F,G,H))
// and finally data-dependent (exact) bounds on generated instances.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/bound.h"
#include "core/decompose.h"
#include "workload/paper_example.h"

namespace xjoin::bench {
namespace {

double UniformExponent(const MultiModelQuery& query) {
  BoundOptions opts;
  opts.path_size_mode = PathSizeMode::kUniform;
  opts.uniform_n = 1024.0;
  auto bound = ComputeBound(query, opts);
  XJ_CHECK(bound.ok()) << bound.status().ToString();
  return bound->cover.uniform_exponent;
}

void Run() {
  Banner("Figure 2: twig -> relational-like tables");
  Twig twig = MakePaperTwig();
  auto d = DecomposeTwig(twig);
  XJ_CHECK(d.ok());
  std::printf("twig:           %s\n", twig.ToString().c_str());
  std::printf("decomposition:  %s\n", DecompositionToString(twig, *d).c_str());

  Banner("Example 3.3 / 3.4: uniform size-bound exponents (all |R| = n)");
  Table table({"query", "LP exponent rho*", "paper"});
  {
    // Twig alone: drop the relational edges by querying only the twig.
    PaperInstance inst = MakePaperInstance(2, PaperSchema::kExample33,
                                           PaperDataMode::kAdversarial);
    MultiModelQuery twig_only;
    twig_only.twigs.push_back(TwigInput{inst.twig, inst.index.get()});
    table.AddRow({"twig X alone", FmtF(UniformExponent(twig_only), 2), "n^5"});

    MultiModelQuery q33 = inst.Query();
    table.AddRow({"Q = R1(B,D) x R2(F,G,H) x X",
                  FmtF(UniformExponent(q33), 2), "n^3.5"});

    PaperInstance inst34 = MakePaperInstance(2, PaperSchema::kExample34,
                                             PaperDataMode::kAdversarial);
    MultiModelQuery q34 = inst34.Query();
    table.AddRow({"Q = R1(A..D) x R2(E..H) x X",
                  FmtF(UniformExponent(q34), 2), "n^2"});
  }
  table.Print();

  Banner("Data-dependent bounds on generated instances (Example 3.4)");
  Table table2({"n", "mode", "log2 bound", "bound", "|Q| actual",
                "twig matches"});
  for (int64_t n : {4, 8}) {
    PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34,
                                           PaperDataMode::kAdversarial);
    MultiModelQuery query = inst.Query();
    for (PathSizeMode mode :
         {PathSizeMode::kExact, PathSizeMode::kChainCount}) {
      BoundOptions opts;
      opts.path_size_mode = mode;
      auto bound = ComputeBound(query, opts);
      XJ_CHECK(bound.ok());
      RunStats xj = RunXJoin(query);
      double n5 = static_cast<double>(n) * n * n * n * n;
      table2.AddRow({FmtInt(n),
                     mode == PathSizeMode::kExact ? "exact" : "chain-count",
                     FmtF(bound->cover.log2_bound, 2),
                     FmtF(std::exp2(bound->cover.log2_bound), 0),
                     FmtInt(xj.output_rows), FmtF(n5, 0)});
    }
  }
  table2.Print();
  std::printf(
      "\nThe bound always dominates |Q|; the twig's own worst case (n^5)\n"
      "is far above it, which is exactly the gap XJoin exploits.\n");
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
