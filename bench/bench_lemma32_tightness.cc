// Lemma 3.1/3.2: the LP bound is an upper bound on the result, and it
// is achievable. For several query shapes, generate the AGM-tight
// instance (full cross products over n^{y_a}-sized domains) and compare
// the LP bound against the actual join size XJoin produces.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "lp/edge_cover.h"
#include "lp/hypergraph.h"
#include "workload/adversarial.h"

namespace xjoin::bench {
namespace {

void RunShape(const std::string& name,
              const std::vector<std::vector<std::string>>& schemas, int64_t n,
              Table* table) {
  auto inst = MakeAgmTightInstance(schemas, n);
  XJ_CHECK(inst.ok()) << inst.status().ToString();

  Hypergraph graph;
  for (size_t i = 0; i < schemas.size(); ++i) {
    HyperEdge edge;
    edge.name = "R" + std::to_string(i + 1);
    edge.attributes = schemas[i];
    edge.size = static_cast<double>(inst->relations[i]->num_rows());
    XJ_CHECK_OK(graph.AddEdge(std::move(edge)));
  }
  auto cover = SolveFractionalEdgeCover(graph);
  XJ_CHECK(cover.ok());

  MultiModelQuery query;
  for (size_t i = 0; i < inst->relations.size(); ++i) {
    query.relations.push_back(
        {"R" + std::to_string(i + 1), inst->relations[i].get()});
  }
  RunStats xj = RunXJoin(query);
  double bound = std::exp2(cover->log2_bound);
  table->AddRow({name, FmtInt(n), FmtF(cover->uniform_exponent, 2),
                 FmtF(bound, 0), FmtInt(xj.output_rows),
                 FmtF(static_cast<double>(xj.output_rows) / bound, 3),
                 FmtSeconds(xj.seconds)});
}

void Run() {
  Banner("Lemma 3.2: AGM-tight instances saturate the bound");
  Table table({"query shape", "n", "rho*", "LP bound", "|join| actual",
               "saturation", "xjoin time"});
  RunShape("triangle R(A,B) S(B,C) T(C,A)",
           {{"A", "B"}, {"B", "C"}, {"C", "A"}}, 256, &table);
  RunShape("4-cycle", {{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "A"}}, 256,
           &table);
  RunShape("star R(A,B) S(A,C) T(A,D)", {{"A", "B"}, {"A", "C"}, {"A", "D"}},
           64, &table);
  RunShape("paper paths (Fig 2, twig side)",
           {{"A", "B"}, {"A", "D"}, {"C", "E"}, {"F", "H"}, {"G"}}, 16, &table);
  RunShape("Loomis-Whitney LW3",
           {{"A", "B"}, {"B", "C"}, {"A", "C"}}, 1024, &table);
  table.Print();
  std::printf(
      "\nSaturation = actual / bound; 1.000 means the instance meets the\n"
      "worst case exactly (Lemma 3.2). Values slightly below 1 arise from\n"
      "integer rounding of fractional domain sizes n^{y_a}.\n");
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
