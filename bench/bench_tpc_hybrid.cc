// Ext-3: the TPC-ish hybrid workload at larger scale — three relational
// tables (orders, customers, books) joined with the invoice document.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/bookstore.h"

namespace xjoin::bench {
namespace {

void Run() {
  Banner("TPC-ish hybrid: 3 tables x invoice twig, enriched output");
  Table table({"orders", "invoices", "|Q|", "baseline time", "xjoin time",
               "time ratio", "base max-inter", "xjoin max-inter"});
  for (int64_t scale : {1, 2, 4, 8}) {
    BookstoreOptions opts;
    opts.num_orders = 1000 * scale;
    opts.num_invoices = 800 * scale;
    opts.num_users = 200 * scale;
    opts.num_books = 300 * scale;
    opts.max_lines_per_invoice = 5;
    BookstoreInstance inst = MakeBookstore(opts);
    MultiModelQuery query = inst.EnrichedQuery();
    RunStats base = RunBaseline(query);
    RunStats xj = RunXJoin(query);
    XJ_CHECK(base.output_rows == xj.output_rows);
    table.AddRow({FmtInt(opts.num_orders), FmtInt(opts.num_invoices),
                  FmtInt(xj.output_rows), FmtSeconds(base.seconds),
                  FmtSeconds(xj.seconds), FmtRatio(base.seconds, xj.seconds),
                  FmtInt(base.max_intermediate), FmtInt(xj.max_intermediate)});
  }
  table.Print();
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
