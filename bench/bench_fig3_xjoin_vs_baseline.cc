// Figure 3 (and Example 3.4): XJoin vs the baseline on the paper's
// adversarial instance — R1(A,B,C,D), R2(E,F,G,H) joined with the twig
// A[B,D]//C/E, E//F[H], F//G on a document where the twig alone has ~n^5
// embeddings while the full query is bounded by n^2.
//
// The paper's bar chart reports baseline/XJoin ratios for running time
// and intermediate result size (~10-20x at its unstated n). This harness
// prints the same two series over a sweep of n.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/paper_example.h"

namespace xjoin::bench {
namespace {

void Run() {
  Banner("Figure 3: X times over XJoin result (adversarial instance)");
  Table table({"n", "twig matches (~n^5)", "baseline time", "xjoin time",
               "time ratio", "baseline max-inter", "xjoin max-inter",
               "intermediate ratio", "|Q|"});
  for (int64_t n : {2, 4, 6, 8, 10, 12}) {
    PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34,
                                           PaperDataMode::kAdversarial);
    MultiModelQuery query = inst.Query();
    RunStats base = RunBaseline(query);
    RunStats xj = RunXJoin(query);
    XJ_CHECK(base.output_rows == xj.output_rows);
    double n5 = static_cast<double>(n) * n * n * n * n;
    table.AddRow({FmtInt(n), FmtF(n5, 0), FmtSeconds(base.seconds),
                  FmtSeconds(xj.seconds),
                  FmtRatio(base.seconds, xj.seconds),
                  FmtInt(base.max_intermediate), FmtInt(xj.max_intermediate),
                  FmtRatio(static_cast<double>(base.max_intermediate),
                           static_cast<double>(xj.max_intermediate)),
                  FmtInt(xj.output_rows)});
  }
  table.Print();
  std::printf(
      "\nPaper reference: bar chart with baseline ~10-20x over XJoin in both\n"
      "running time and intermediate size; ratios here grow with n as the\n"
      "baseline materializes the ~n^5 twig result while XJoin stays within\n"
      "the n^2 bound at every stage.\n");

  Banner("Figure 3 control: random (non-adversarial) data");
  Table control({"n", "baseline time", "xjoin time", "time ratio",
                 "baseline max-inter", "xjoin max-inter", "|Q|"});
  for (int64_t n : {4, 8, 12}) {
    PaperInstance inst =
        MakePaperInstance(n, PaperSchema::kExample34, PaperDataMode::kRandom);
    MultiModelQuery query = inst.Query();
    RunStats base = RunBaseline(query);
    RunStats xj = RunXJoin(query);
    control.AddRow({FmtInt(n), FmtSeconds(base.seconds), FmtSeconds(xj.seconds),
                    FmtRatio(base.seconds, xj.seconds),
                    FmtInt(base.max_intermediate), FmtInt(xj.max_intermediate),
                    FmtInt(xj.output_rows)});
  }
  control.Print();
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
