// Serving benchmark: N writer threads flip relations copy-on-swap while
// M reader threads open sessions and run the same join, measuring
// throughput and latency percentiles per (readers, writers, shards)
// configuration. Every reader result is verified byte-identical to the
// serially precomputed result for the snapshot it observed — a reader
// that sees a torn mix of relation versions fails the whole bench.
//
//   bench_concurrent --readers=1,2,4 --writers=0,2 --shards=1,4
//                    --iters=20 --rows=600 --json=BENCH_concurrent.json
//
// Robustness mode: --cancel-rate=<pct> makes that percentage of reader
// queries race a canceller thread (outcomes must be the exact result or
// a clean kCancelled), and --tenants=<n> routes readers through n
// deliberately small tenant pools so admission queueing/rejection is
// exercised under load (typed kResourceExhausted counts as a healthy
// outcome, anything else fails the bench):
//
//   bench_concurrent --readers=4 --writers=2 --cancel-rate=30 --tenants=2
//                    --json=BENCH_robustness.json
//
// Network mode: --net serves the same database through the framed-
// socket front-end on a loopback port and drives it with M concurrent
// retrying clients per configuration, measuring end-to-end request
// latency percentiles plus shed/retry counts. Every response is
// verified against the serially precomputed rows; shed requests must
// be absorbed by client retries (a request that exhausts its retry
// budget fails the bench):
//
//   bench_concurrent --net --clients=1,2,4,8 --iters=40
//                    --json=BENCH_net.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "relational/csv.h"

namespace xjoin::bench {
namespace {

// CSV for a two-column relation whose rows are (i + offset,
// (i + offset) % mod) for i in [0, n). Variants with different offsets
// share the join-key range, so every version combination joins.
std::string MakeCsv(const std::string& a, const std::string& b, int n,
                    int mod, int offset) {
  std::string csv = a + "," + b + "\n";
  for (int i = 0; i < n; ++i) {
    csv += std::to_string(i + offset) + "," +
           std::to_string((i + offset) % mod) + "\n";
  }
  return csv;
}

struct Record {
  int readers = 0;
  int writers = 0;
  int shards = 0;
  int cancel_rate = 0;
  int tenants = 0;
  int64_t queries = 0;
  int64_t updates = 0;
  int64_t cancelled = 0;
  int64_t rejected = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * (sorted_seconds.size() - 1));
  return sorted_seconds[rank] * 1e3;
}

// One (readers, writers, shards) configuration. Writers keep the
// invariant "relation version even <=> contents variant 0", so a reader
// can map the version parities its snapshot reports to one of four
// serially precomputed expected results.
Record RunConfig(int readers, int writers, int shards, int iters, int rows,
                 int cancel_rate, int tenants, const std::string& query) {
  MultiModelDatabase db;
  XJ_CHECK(db.RegisterRelationCsv("R", MakeCsv("A", "B", rows, 30, 0)).ok());
  XJ_CHECK(db.RegisterRelationCsv("S", MakeCsv("B", "C", rows, 30, 0)).ok());

  // Robustness mode: small pools so saturation/queueing actually occurs
  // at bench concurrency (typed rejections are counted, not failures).
  for (int t = 0; t < tenants; ++t) {
    TenantPoolOptions popt;
    popt.max_concurrent = 2;
    popt.max_queue_depth = 4;
    popt.queue_deadline_micros = 20 * 1000;
    XJ_CHECK(db.CreateTenantPool("t" + std::to_string(t), popt).ok());
  }

  auto parse = [&](const std::string& csv) {
    auto rel = ReadCsv(csv, CsvOptions{}, db.mutable_dictionary());
    XJ_CHECK(rel.ok()) << rel.status().ToString();
    return *std::move(rel);
  };
  const Relation r0 = parse(MakeCsv("A", "B", rows, 30, 0));
  const Relation r1 = parse(MakeCsv("A", "B", rows, 30, 1000000));
  const Relation s0 = parse(MakeCsv("B", "C", rows, 30, 0));
  const Relation s1 = parse(MakeCsv("B", "C", rows, 30, 1000000));

  // expected[r parity][s parity], computed serially. The update walk
  // ends back at contents 0 with both versions even, re-establishing
  // the invariant before the concurrent phase starts.
  std::vector<Tuple> expected[2][2];
  auto snapshot_tuples = [&]() {
    auto result = db.Query(query, QueryOptions{});
    XJ_CHECK(result.ok()) << result.status().ToString();
    return result->ToTuples();
  };
  expected[0][0] = snapshot_tuples();
  XJ_CHECK(db.UpdateRelation("S", Relation(s1)).ok());  // S v1
  expected[0][1] = snapshot_tuples();
  XJ_CHECK(db.UpdateRelation("R", Relation(r1)).ok());  // R v1
  expected[1][1] = snapshot_tuples();
  XJ_CHECK(db.UpdateRelation("S", Relation(s0)).ok());  // S v2
  expected[1][0] = snapshot_tuples();
  XJ_CHECK(db.UpdateRelation("R", Relation(r0)).ok());  // R v2

  // Per-relation serialization so concurrent writers can share a
  // relation without breaking the version <=> contents mapping.
  struct WriteTarget {
    const char* name;
    const Relation* variant[2];
    std::mutex mu;
    uint64_t flips = 0;
  };
  WriteTarget targets[2];
  targets[0].name = "R";
  targets[0].variant[0] = &r0;
  targets[0].variant[1] = &r1;
  targets[1].name = "S";
  targets[1].variant[0] = &s0;
  targets[1].variant[1] = &s1;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> updates{0};
  std::atomic<int64_t> cancelled{0};
  std::atomic<int64_t> rejected{0};
  std::vector<std::vector<double>> latencies(readers);
  for (auto& v : latencies) v.reserve(iters);

  std::vector<std::thread> threads;
  threads.reserve(writers + readers);
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      WriteTarget& target = targets[w % 2];
      while (!stop.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(target.mu);
        ++target.flips;
        const Relation& next = *target.variant[target.flips % 2];
        if (!db.UpdateRelation(target.name, Relation(next)).ok()) {
          mismatches.fetch_add(1);
          return;
        }
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Timer wall;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < iters; ++i) {
        Session session = db.OpenSession();
        auto rv = session.relation_version("R");
        auto sv = session.relation_version("S");
        if (!rv.ok() || !sv.ok()) {
          mismatches.fetch_add(1);
          return;
        }
        QueryOptions options;
        options.xjoin.num_threads = shards;
        if (tenants > 0) options.tenant = "t" + std::to_string(r % tenants);
        // Deterministic per-(reader, iteration) cancel schedule: the
        // canceller races the query after a short staggered delay.
        const bool race_cancel =
            cancel_rate > 0 && (r * 7919 + i * 104729) % 100 < cancel_rate;
        CancellationToken token;
        std::thread canceller;
        if (race_cancel) {
          options.cancel = &token;
          if ((r + i) % 2 == 0) {
            // Half the cancels land before the query starts (the typed
            // kCancelled path is exercised even when queries finish in
            // microseconds); the other half genuinely race it.
            token.Cancel("bench canceller");
          } else {
            canceller = std::thread([&token, r, i] {
              std::this_thread::sleep_for(
                  std::chrono::microseconds((r * 131 + i * 53) % 400));
              token.Cancel("bench canceller");
            });
          }
        }
        Timer timer;
        auto result = session.Query(query, options);
        double seconds = timer.ElapsedSeconds();
        if (canceller.joinable()) canceller.join();
        if (result.ok()) {
          if (result->ToTuples() != expected[*rv % 2][*sv % 2]) {
            mismatches.fetch_add(1);
            return;
          }
          latencies[r].push_back(seconds);
        } else if (race_cancel &&
                   result.status().code() == StatusCode::kCancelled) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
        } else if (tenants > 0 && result.status().code() ==
                                      StatusCode::kResourceExhausted) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
          mismatches.fetch_add(1);  // untyped failure: fail the bench
          return;
        }
      }
    });
  }

  // Readers run a fixed iteration count; writers flip until the last
  // reader finishes (or immediately when writers == 0).
  for (size_t t = writers; t < threads.size(); ++t) threads[t].join();
  double seconds = wall.ElapsedSeconds();
  stop.store(true);
  for (int w = 0; w < writers; ++w) threads[w].join();

  XJ_CHECK(mismatches.load() == 0)
      << "readers=" << readers << " writers=" << writers
      << " shards=" << shards << ": " << mismatches.load()
      << " reader(s) saw a result that matches no consistent snapshot";

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  Record record;
  record.readers = readers;
  record.writers = writers;
  record.shards = shards;
  record.cancel_rate = cancel_rate;
  record.tenants = tenants;
  record.queries = static_cast<int64_t>(all.size());
  record.updates = updates.load();
  record.cancelled = cancelled.load();
  record.rejected = rejected.load();
  record.seconds = seconds;
  record.qps = seconds > 0 ? static_cast<double>(all.size()) / seconds : 0.0;
  record.p50_ms = PercentileMs(all, 0.50);
  record.p95_ms = PercentileMs(all, 0.95);
  record.p99_ms = PercentileMs(all, 0.99);
  return record;
}

struct NetRecord {
  int clients = 0;
  int max_inflight = 0;
  int64_t queries = 0;
  int64_t retries = 0;
  int64_t shed = 0;
  int64_t reconnects = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// One --net configuration: a live loopback server with a deliberately
// small in-flight ceiling, hammered by `clients` retrying clients.
// Latency is end-to-end per request, retries included.
NetRecord RunNetConfig(int clients, int iters, int rows,
                       const std::string& query) {
  MultiModelDatabase db;
  XJ_CHECK(db.RegisterRelationCsv("R", MakeCsv("A", "B", rows, 30, 0)).ok());
  XJ_CHECK(db.RegisterRelationCsv("S", MakeCsv("B", "C", rows, 30, 0)).ok());

  const auto expected = [&] {
    auto result = db.Query(query, QueryOptions{});
    XJ_CHECK(result.ok()) << result.status().ToString();
    const Relation& rel = *result;
    const Dictionary& dict = db.dictionary();
    std::vector<std::vector<std::string>> rows_out;
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < rel.num_columns(); ++c) {
        const int64_t code = rel.at(r, c);
        row.push_back(dict.Contains(code) ? dict.Decode(code)
                                          : "#" + std::to_string(code));
      }
      rows_out.push_back(std::move(row));
    }
    return rows_out;
  }();

  net::ServerOptions sopt;
  sopt.num_workers = 2;
  // Half the client count (min 1): the higher configurations overload
  // the ceiling on purpose so shedding and retry-hint behavior shows up
  // in the numbers instead of only in tests.
  sopt.max_inflight = std::max(1, clients / 2);
  net::XJoinServer server(&db, sopt);
  XJ_CHECK(server.Start().ok());

  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> reconnects{0};
  std::vector<std::vector<double>> latencies(clients);
  for (auto& v : latencies) v.reserve(iters);

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientOptions copt;
      copt.port = server.port();
      copt.max_attempts = 12;
      copt.backoff_base_micros = 200;
      copt.backoff_cap_micros = 10'000;
      copt.jitter_seed = static_cast<uint64_t>(c + 1);
      net::XJoinClient client(copt);
      net::QueryRequest request;
      request.text = query;
      for (int i = 0; i < iters; ++i) {
        Timer timer;
        auto result = client.Query(request);
        const double seconds = timer.ElapsedSeconds();
        if (!result.ok() || result->rows != expected) {
          mismatches.fetch_add(1);
          return;
        }
        latencies[c].push_back(seconds);
      }
      retries.fetch_add(client.stats().retries, std::memory_order_relaxed);
      reconnects.fetch_add(client.stats().reconnects,
                           std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  XJ_CHECK(mismatches.load() == 0)
      << "clients=" << clients << ": " << mismatches.load()
      << " request(s) failed or returned wrong rows over the wire";

  const net::ServerStats stats = server.stats();
  server.Shutdown();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  NetRecord record;
  record.clients = clients;
  record.max_inflight = sopt.max_inflight;
  record.queries = static_cast<int64_t>(all.size());
  record.retries = retries.load();
  record.shed = stats.shed_inflight + stats.shed_draining +
                stats.rejected_conn_limit;
  record.reconnects = reconnects.load();
  record.seconds = seconds;
  record.qps = seconds > 0 ? static_cast<double>(all.size()) / seconds : 0.0;
  record.p50_ms = PercentileMs(all, 0.50);
  record.p95_ms = PercentileMs(all, 0.95);
  record.p99_ms = PercentileMs(all, 0.99);
  return record;
}

void RunNet(int argc, char** argv) {
  const std::vector<int> clients =
      IntListFlag(argc, argv, "clients", {1, 2, 4, 8});
  const int iters = static_cast<int>(IntFlag(argc, argv, "iters", 40));
  const int rows = static_cast<int>(IntFlag(argc, argv, "rows", 600));
  const std::string query = "Q(A, B, C) := R, S";

  Banner("Network front-end: retrying clients vs a shedding loopback "
         "server");

  std::vector<NetRecord> records;
  for (int c : clients) records.push_back(RunNetConfig(c, iters, rows, query));

  Table table({"clients", "inflight_cap", "queries", "retries", "shed",
               "reconnects", "qps", "p50", "p95", "p99"});
  for (const NetRecord& r : records) {
    table.AddRow({FmtInt(r.clients), FmtInt(r.max_inflight),
                  FmtInt(r.queries), FmtInt(r.retries), FmtInt(r.shed),
                  FmtInt(r.reconnects), FmtF(r.qps, 0),
                  FmtSeconds(r.p50_ms / 1e3), FmtSeconds(r.p95_ms / 1e3),
                  FmtSeconds(r.p99_ms / 1e3)});
  }
  table.Print();
  std::printf("\nAll %zu configurations returned byte-identical rows over "
              "the wire; every shed request was absorbed by client "
              "retries.\n",
              records.size());

  JsonArrayWriter json;
  for (const NetRecord& r : records) {
    json.BeginObject()
        .Field("clients", r.clients)
        .Field("max_inflight", r.max_inflight)
        .Field("queries", r.queries)
        .Field("retries", r.retries)
        .Field("shed", r.shed)
        .Field("reconnects", r.reconnects)
        .Field("seconds", r.seconds, 6)
        .Field("qps", r.qps, 1)
        .Field("p50_ms", r.p50_ms, 3)
        .Field("p95_ms", r.p95_ms, 3)
        .Field("p99_ms", r.p99_ms, 3);
  }
  json.Emit(FlagValue(argc, argv, "json"));
}

void Run(int argc, char** argv) {
  // Bare "--net" (or "--net=1") switches to the loopback serving bench.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" || arg.rfind("--net=", 0) == 0) {
      RunNet(argc, argv);
      return;
    }
  }
  const std::vector<int> readers = IntListFlag(argc, argv, "readers",
                                               {1, 2, 4});
  const std::vector<int> writers = IntListFlag(argc, argv, "writers", {0, 2});
  const std::vector<int> shards = IntListFlag(argc, argv, "shards", {1, 4});
  const int iters = static_cast<int>(IntFlag(argc, argv, "iters", 20));
  const int rows = static_cast<int>(IntFlag(argc, argv, "rows", 600));
  const int cancel_rate =
      static_cast<int>(IntFlag(argc, argv, "cancel-rate", 0));
  const int tenants = static_cast<int>(IntFlag(argc, argv, "tenants", 0));
  const std::string query = "Q(A, B, C) := R, S";

  Banner(cancel_rate > 0 || tenants > 0
             ? "Serving core: concurrent sessions under cancellation and "
               "tenant admission"
             : "Serving core: concurrent sessions vs copy-on-swap writers");

  std::vector<Record> records;
  for (int m : readers) {
    for (int n : writers) {
      for (int s : shards) {
        records.push_back(
            RunConfig(m, n, s, iters, rows, cancel_rate, tenants, query));
      }
    }
  }

  Table table({"readers", "writers", "shards", "queries", "updates",
               "cancelled", "rejected", "qps", "p50", "p95", "p99"});
  for (const Record& r : records) {
    table.AddRow({FmtInt(r.readers), FmtInt(r.writers), FmtInt(r.shards),
                  FmtInt(r.queries), FmtInt(r.updates), FmtInt(r.cancelled),
                  FmtInt(r.rejected), FmtF(r.qps, 0),
                  FmtSeconds(r.p50_ms / 1e3), FmtSeconds(r.p95_ms / 1e3),
                  FmtSeconds(r.p99_ms / 1e3)});
  }
  table.Print();
  std::printf("\nAll %zu configurations returned byte-identical results (or "
              "typed cancel/admission errors) for their snapshots.\n",
              records.size());

  JsonArrayWriter json;
  for (const Record& r : records) {
    json.BeginObject()
        .Field("readers", r.readers)
        .Field("writers", r.writers)
        .Field("shards", r.shards)
        .Field("cancel_rate", r.cancel_rate)
        .Field("tenants", r.tenants)
        .Field("queries", r.queries)
        .Field("updates", r.updates)
        .Field("cancelled", r.cancelled)
        .Field("rejected", r.rejected)
        .Field("seconds", r.seconds, 6)
        .Field("qps", r.qps, 1)
        .Field("p50_ms", r.p50_ms, 3)
        .Field("p95_ms", r.p95_ms, 3)
        .Field("p99_ms", r.p99_ms, 3);
  }
  json.Emit(FlagValue(argc, argv, "json"));
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Run(argc, argv);
  return 0;
}
