// Micro-3 (harness): the classical twig matchers head-to-head as Q2
// evaluators inside the baseline — naive vs structural-join plan vs
// PathStack vs TwigStack — on documents that stress their known
// weaknesses (P-C edges for TwigStack, dying path solutions for
// PathStack, big edge pair lists for the plan).
#include <cstdio>

#include "bench/bench_util.h"
#include "twigjoin/naive_twig.h"
#include "twigjoin/twig_matchers.h"
#include "twigjoin/twigstack.h"
#include "workload/xmark.h"
#include "xml/parser.h"

namespace xjoin::bench {
namespace {

struct MatchStats {
  double seconds;
  int64_t matches;
  int64_t intermediates;
};

MatchStats Time(const char* which, const XmlDocument& doc,
                const NodeIndex& index, const Twig& twig) {
  Metrics metrics;
  Timer timer;
  int64_t rows = 0;
  std::string name(which);
  if (name == "naive") {
    rows = static_cast<int64_t>(MatchTwigNaive(doc, twig).size());
  } else if (name == "plan") {
    auto rel = MatchTwigStructuralPlan(doc, index, twig, &metrics);
    XJ_CHECK(rel.ok());
    rows = static_cast<int64_t>(rel->num_rows());
  } else if (name == "pathstack") {
    auto rel = MatchTwigPathStack(doc, index, twig, &metrics);
    XJ_CHECK(rel.ok());
    rows = static_cast<int64_t>(rel->num_rows());
  } else {
    auto rel = MatchTwigStack(doc, index, twig, &metrics);
    XJ_CHECK(rel.ok());
    rows = static_cast<int64_t>(rel->num_rows());
  }
  MatchStats stats;
  stats.seconds = timer.ElapsedSeconds();
  stats.matches = rows;
  stats.intermediates = metrics.Get("twig_plan.total_intermediate") +
                        metrics.Get("twig_path.path_solutions") +
                        metrics.Get("twigstack.path_solutions");
  return stats;
}

void Compare(const char* label, const XmlDocument& doc, const NodeIndex& index,
             const Twig& twig, bool include_naive) {
  Banner(std::string("Q2 strategies: ") + label + "  (twig " +
         twig.ToString() + ")");
  Table table({"matcher", "time", "matches", "intermediates"});
  std::vector<const char*> matchers = {"plan", "pathstack", "twigstack"};
  if (include_naive) matchers.insert(matchers.begin(), "naive");
  for (const char* m : matchers) {
    MatchStats stats = Time(m, doc, index, twig);
    table.AddRow({m, FmtSeconds(stats.seconds), FmtInt(stats.matches),
                  FmtInt(stats.intermediates)});
  }
  table.Print();
}

void Run() {
  // XMark: realistic branching twig.
  {
    XMarkOptions opts;
    opts.num_items = 400;
    opts.num_persons = 200;
    opts.num_open_auctions = 240;
    opts.num_closed_auctions = 200;
    XMarkInstance inst = MakeXMark(opts);
    auto twig = Twig::Parse("open_auction[bidder/personref]/itemref");
    Compare("xmark branching", *inst.doc, *inst.index, *twig, true);
  }
  // PathStack stressor: many path solutions that die in the merge.
  {
    std::string xml = "<root>";
    for (int i = 0; i < 2000; ++i) xml += "<a><b/></a>";
    for (int i = 0; i < 5; ++i) xml += "<a><b/><c/></a>";
    xml += "</root>";
    auto doc = ParseXml(xml);
    XJ_CHECK(doc.ok());
    Dictionary dict;
    NodeIndex index = NodeIndex::Build(&*doc, &dict);
    auto twig = Twig::Parse("a[b]/c");
    Compare("dying (a,b) path solutions", *doc, index, *twig, false);
  }
  // TwigStack P-C stressor: deep nesting breaks its optimality.
  {
    std::string xml;
    for (int i = 0; i < 400; ++i) xml += "<a><m>";
    xml += "<b/>";
    for (int i = 0; i < 400; ++i) xml += "</m></a>";
    xml = "<root>" + xml + "<a><b/></a></root>";
    auto doc = ParseXml(xml);
    XJ_CHECK(doc.ok());
    Dictionary dict;
    NodeIndex index = NodeIndex::Build(&*doc, &dict);
    auto twig = Twig::Parse("a/b");
    Compare("deep P-C chain", *doc, index, *twig, false);
  }
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
