// Ext-1: scaling behaviour of XJoin vs the baseline as n grows, on both
// the adversarial paper instance (baseline degrades as ~n^5) and random
// data (both engines scale gracefully).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/paper_example.h"

namespace xjoin::bench {
namespace {

void Sweep(PaperDataMode mode, const char* label) {
  Banner(std::string("Scaling on ") + label + " data (Example 3.4 schema)");
  Table table({"n", "baseline time", "xjoin time", "base total-inter",
               "xjoin total-inter", "|Q|"});
  // The baseline materializes the ~n^5 twig result on this document, so
  // the sweep stops where that blow-up is still measurable in seconds.
  std::vector<int64_t> ns = mode == PaperDataMode::kAdversarial
                                ? std::vector<int64_t>{2, 4, 8, 12}
                                : std::vector<int64_t>{4, 8, 12, 16};
  for (int64_t n : ns) {
    PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34, mode);
    MultiModelQuery query = inst.Query();
    RunStats base = RunBaseline(query);
    RunStats xj = RunXJoin(query);
    table.AddRow({FmtInt(n), FmtSeconds(base.seconds), FmtSeconds(xj.seconds),
                  FmtInt(base.total_intermediate),
                  FmtInt(xj.total_intermediate), FmtInt(xj.output_rows)});
  }
  table.Print();
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Sweep(xjoin::PaperDataMode::kAdversarial, "adversarial");
  xjoin::bench::Sweep(xjoin::PaperDataMode::kRandom, "random");
  return 0;
}
