// Ext-1: scaling behaviour of XJoin vs the baseline as n grows, on both
// the adversarial paper instance (baseline degrades as ~n^5) and random
// data (both engines scale gracefully) — plus the shard/thread sweep of
// the parallel executor on the XMark join, emitting a JSON perf
// trajectory future PRs can diff against.
//
// Flags: --threads=1,2,4,8   shard counts for the thread sweep
//        --xmark-scale=64    XMark size multiplier for the sweep
//        --json=PATH         also write the sweep records to PATH
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

void Sweep(PaperDataMode mode, const char* label) {
  Banner(std::string("Scaling on ") + label + " data (Example 3.4 schema)");
  Table table({"n", "baseline time", "xjoin time", "base total-inter",
               "xjoin total-inter", "|Q|"});
  // The baseline materializes the ~n^5 twig result on this document, so
  // the sweep stops where that blow-up is still measurable in seconds.
  std::vector<int64_t> ns = mode == PaperDataMode::kAdversarial
                                ? std::vector<int64_t>{2, 4, 8, 12}
                                : std::vector<int64_t>{4, 8, 12, 16};
  for (int64_t n : ns) {
    PaperInstance inst = MakePaperInstance(n, PaperSchema::kExample34, mode);
    MultiModelQuery query = inst.Query();
    RunStats base = RunBaseline(query);
    RunStats xj = RunXJoin(query);
    table.AddRow({FmtInt(n), FmtSeconds(base.seconds), FmtSeconds(xj.seconds),
                  FmtInt(base.total_intermediate),
                  FmtInt(xj.total_intermediate), FmtInt(xj.output_rows)});
  }
  table.Print();
}

// Shard/thread sweep on the XMark closed-auction join: serial first,
// then each requested thread count, best of `kReps` runs. Every sharded
// result is checked byte-identical to the serial one before timing is
// trusted.
void ThreadSweep(const std::vector<int>& threads_list, int64_t xmark_scale,
                 const char* json_path) {
  Banner("Thread sweep: sharded XJoin on the XMark closed-auction join");
  XMarkOptions opts;
  opts.num_items = 200 * xmark_scale;
  opts.num_persons = 100 * xmark_scale;
  opts.num_open_auctions = 120 * xmark_scale;
  opts.num_closed_auctions = 100 * xmark_scale;
  XMarkInstance inst = MakeXMark(opts);
  MultiModelQuery query = inst.ClosedAuctionQuery();
  constexpr int kReps = 3;

  auto run_once = [&](int threads, Metrics* metrics) {
    XJoinOptions xo;
    xo.num_threads = threads;
    xo.metrics = metrics;
    Timer timer;
    auto result = ExecuteXJoin(query, xo);
    double seconds = timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    return std::make_pair(seconds, *std::move(result));
  };

  Metrics serial_metrics;
  auto [serial_seconds, serial_result] = run_once(1, &serial_metrics);
  for (int rep = 1; rep < kReps; ++rep) {
    Metrics m;
    serial_seconds = std::min(serial_seconds, run_once(1, &m).first);
  }
  const std::vector<Tuple> expected = serial_result.ToTuples();

  Table table({"threads", "shards", "time", "speedup", "|Q|"});
  JsonArrayWriter json;
  for (int threads : threads_list) {
    double best = 0.0;
    int64_t shards = 1;
    if (threads <= 1) {
      best = serial_seconds;
    } else {
      for (int rep = 0; rep < kReps; ++rep) {
        Metrics m;
        auto [seconds, result] = run_once(threads, &m);
        XJ_CHECK(result.ToTuples() == expected)
            << "sharded result diverged at threads=" << threads;
        if (rep == 0 || seconds < best) best = seconds;
        shards = m.Get("gj.shards");
      }
    }
    double speedup = best > 0 ? serial_seconds / best : 0.0;
    table.AddRow({FmtInt(threads), FmtInt(shards), FmtSeconds(best),
                  FmtF(speedup, 2) + "x",
                  FmtInt(static_cast<int64_t>(serial_result.num_rows()))});
    json.BeginObject()
        .Field("bench", "bench_scaling")
        .Field("section", "thread_sweep")
        .Field("workload", "xmark.closed_auction")
        .Field("xmark_scale", xmark_scale)
        .Field("doc_nodes", static_cast<int64_t>(inst.doc->num_nodes()))
        .Field("threads", threads)
        .Field("shards", shards)
        .Field("seconds", best, 6)
        .Field("speedup", speedup, 3)
        .Field("output_rows", static_cast<int64_t>(serial_result.num_rows()));
  }
  table.Print();
  json.Emit(json_path);
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Sweep(xjoin::PaperDataMode::kAdversarial, "adversarial");
  xjoin::bench::Sweep(xjoin::PaperDataMode::kRandom, "random");
  xjoin::bench::ThreadSweep(
      xjoin::bench::IntListFlag(argc, argv, "threads", {1, 2, 4, 8}),
      xjoin::bench::IntFlag(argc, argv, "xmark-scale", 64),
      xjoin::bench::FlagValue(argc, argv, "json"));
  return 0;
}
