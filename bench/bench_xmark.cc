// Ext-2: XMark-like workload — deep twig queries over the auction
// document joined with relational category/geography tables, across
// scale factors and for both query shapes.
//
// Flags: --threads=N  run XJoin sharded on N threads (default 1, serial).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

void Run(int threads) {
  Banner("XMark-like workload: XJoin vs baseline");
  Table table({"scale", "doc nodes", "query", "|Q|", "baseline time",
               "xjoin time", "time ratio", "base max-inter",
               "xjoin max-inter"});
  for (int64_t scale : {1, 4, 16}) {
    XMarkOptions opts;
    opts.num_items = 200 * scale;
    opts.num_persons = 100 * scale;
    opts.num_open_auctions = 120 * scale;
    opts.num_closed_auctions = 100 * scale;
    XMarkInstance inst = MakeXMark(opts);
    struct NamedQuery {
      const char* name;
      MultiModelQuery query;
    };
    NamedQuery queries[] = {
        {"closed_auction[itemref,buyer]/price", inst.ClosedAuctionQuery()},
        {"site//open_auction[bidder/personref]/itemref",
         inst.OpenAuctionQuery()},
    };
    for (auto& nq : queries) {
      RunStats base = RunBaseline(nq.query);
      XJoinOptions xj_opts;
      xj_opts.num_threads = threads;
      RunStats xj = RunXJoin(nq.query, xj_opts);
      XJ_CHECK(base.output_rows == xj.output_rows);
      table.AddRow({FmtInt(scale),
                    FmtInt(static_cast<int64_t>(inst.doc->num_nodes())),
                    nq.name, FmtInt(xj.output_rows), FmtSeconds(base.seconds),
                    FmtSeconds(xj.seconds),
                    FmtRatio(base.seconds, xj.seconds),
                    FmtInt(base.max_intermediate),
                    FmtInt(xj.max_intermediate)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Run(
      static_cast<int>(xjoin::bench::IntFlag(argc, argv, "threads", 1)));
  return 0;
}
