// Micro-1 (google-benchmark): trie construction, seek costs, and
// leapfrog intersection vs binary hash join on the relational substrate.
//
// The CSR level-array RelationTrie is benchmarked against a copy of the
// pre-CSR layout (sorted columns + per-row binary-search cursors, the
// repo's original implementation — see legacy_trie.h, kept in its own
// translation unit so inlining stays symmetric) so build-time and
// Seek-latency speedups are measurable from one binary:
//
//   BM_TrieBuild            vs  BM_TrieBuildLegacy
//   BM_TrieSeek             vs  BM_TrieSeekLegacy
//   BM_TrieIterateSeekHeavy vs  BM_TrieIterateSeekHeavyLegacy
//
// Accepts `--json=PATH` (shorthand for google-benchmark's
// --benchmark_out=PATH --benchmark_out_format=json) so CI can archive
// the numbers as a perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/dictionary.h"
#include "common/random.h"
#include "core/generic_join.h"
#include "legacy_trie.h"
#include "relational/operators.h"
#include "relational/trie.h"

namespace xjoin {
namespace {

using bench::LegacySortedColumnTrie;

Relation RandomBinary(Rng* rng, int64_t rows, int64_t domain) {
  auto schema = Schema::Make({"A", "B"});
  Relation rel(*schema);
  for (int64_t i = 0; i < rows; ++i) {
    rel.AppendRow({static_cast<int64_t>(rng->NextBounded(
                       static_cast<uint64_t>(domain))),
                   static_cast<int64_t>(rng->NextBounded(
                       static_cast<uint64_t>(domain)))});
  }
  return rel;
}

// --- Build: CSR + radix vs legacy comparator sort ----------------------
void BM_TrieBuild(benchmark::State& state) {
  Rng rng(1);
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0) / 4 + 1);
  for (auto _ : state) {
    auto trie = RelationTrie::Build(rel, {"A", "B"});
    benchmark::DoNotOptimize(trie);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TrieBuildLegacy(benchmark::State& state) {
  Rng rng(1);  // same seed: same data as BM_TrieBuild
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0) / 4 + 1);
  for (auto _ : state) {
    auto trie = LegacySortedColumnTrie::Build(rel, {"A", "B"});
    benchmark::DoNotOptimize(trie);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieBuildLegacy)->Arg(1000)->Arg(10000)->Arg(100000);

// --- Seek latency: one cold gallop+bsearch per iteration ---------------
void BM_TrieSeek(benchmark::State& state) {
  Rng rng(2);
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0));
  auto trie = RelationTrie::Build(rel, {"A", "B"});
  Rng probe_rng(3);
  for (auto _ : state) {
    auto it = trie->NewIterator();
    it->Open();
    int64_t target = static_cast<int64_t>(
        probe_rng.NextBounded(static_cast<uint64_t>(state.range(0))));
    if (!it->AtEnd() && it->Key() <= target) it->Seek(target);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_TrieSeek)->Arg(10000)->Arg(100000);

void BM_TrieSeekLegacy(benchmark::State& state) {
  Rng rng(2);  // same seed: same data as BM_TrieSeek
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0));
  auto trie = LegacySortedColumnTrie::Build(rel, {"A", "B"});
  Rng probe_rng(3);
  for (auto _ : state) {
    auto it = trie.NewIterator();
    it->Open();
    int64_t target = static_cast<int64_t>(
        probe_rng.NextBounded(static_cast<uint64_t>(state.range(0))));
    if (!it->AtEnd() && it->Key() <= target) it->Seek(target);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_TrieSeekLegacy)->Arg(10000)->Arg(100000);

// --- Seek-heavy iteration: the generic-join access pattern -------------
// Walk level 0 by seeking ahead a few keys at a time; under each
// binding, open level 1 and drain it with Next(). This is the inner
// loop shape of a leapfrog join (many short seeks, many per-parent
// child scans) and is where O(1) Open/Next and per-parent seek ranges
// pay off against full-row-range binary searches.
void BM_TrieIterateSeekHeavy(benchmark::State& state) {
  Rng rng(5);
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0) / 4 + 1);
  auto trie = RelationTrie::Build(rel, {"A", "B"});
  for (auto _ : state) {
    int64_t sum = 0;
    auto it = trie->NewIterator();
    it->Open();
    while (!it->AtEnd()) {
      it->Open();
      while (!it->AtEnd()) {
        sum += it->Key();
        it->Next();
      }
      it->Up();
      int64_t next_target = it->Key() + 3;
      it->Seek(next_target);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieIterateSeekHeavy)->Arg(10000)->Arg(100000);

void BM_TrieIterateSeekHeavyLegacy(benchmark::State& state) {
  Rng rng(5);  // same seed: same data as BM_TrieIterateSeekHeavy
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0) / 4 + 1);
  auto trie = LegacySortedColumnTrie::Build(rel, {"A", "B"});
  for (auto _ : state) {
    int64_t sum = 0;
    auto it = trie.NewIterator();
    it->Open();
    while (!it->AtEnd()) {
      it->Open();
      while (!it->AtEnd()) {
        sum += it->Key();
        it->Next();
      }
      it->Up();
      int64_t next_target = it->Key() + 3;
      it->Seek(next_target);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieIterateSeekHeavyLegacy)->Arg(10000)->Arg(100000);

// --- Triangle query: leapfrog (GenericJoin) vs binary hash joins -------
void BM_TriangleLeapfrog(benchmark::State& state) {
  Rng rng(4);
  int64_t rows = state.range(0);
  int64_t domain = rows / 8 + 2;
  auto mk = [&](const char* a, const char* b) {
    auto schema = Schema::Make({a, b});
    Relation rel(*schema);
    for (int64_t i = 0; i < rows; ++i) {
      rel.AppendRow({static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain))),
                     static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain)))});
    }
    return rel;
  };
  Relation r = mk("A", "B"), s = mk("B", "C"), t = mk("A", "C");
  auto tr = RelationTrie::Build(r, {"A", "B"});
  auto ts = RelationTrie::Build(s, {"B", "C"});
  auto tt = RelationTrie::Build(t, {"A", "C"});
  for (auto _ : state) {
    auto ir = tr->NewIterator();
    auto is = ts->NewIterator();
    auto it = tt->NewIterator();
    GenericJoinOptions opts;
    opts.attribute_order = {"A", "B", "C"};
    auto result = GenericJoin({{"R", {"A", "B"}, ir.get()},
                               {"S", {"B", "C"}, is.get()},
                               {"T", {"A", "C"}, it.get()}},
                              opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TriangleLeapfrog)->Arg(1000)->Arg(5000);

void BM_TriangleHashJoin(benchmark::State& state) {
  Rng rng(4);  // same seed: same data as leapfrog
  int64_t rows = state.range(0);
  int64_t domain = rows / 8 + 2;
  auto mk = [&](const char* a, const char* b) {
    auto schema = Schema::Make({a, b});
    Relation rel(*schema);
    for (int64_t i = 0; i < rows; ++i) {
      rel.AppendRow({static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain))),
                     static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain)))});
    }
    return rel;
  };
  Relation r = mk("A", "B"), s = mk("B", "C"), t = mk("A", "C");
  for (auto _ : state) {
    auto result = JoinAll({&r, &s, &t});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TriangleHashJoin)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace xjoin

// Custom main: translate `--json=PATH` into google-benchmark's
// --benchmark_out flags before initialization (shared helper in
// bench_util.h); everything else passes through untouched.
int main(int argc, char** argv) {
  std::vector<std::string> args = xjoin::bench::TranslateJsonFlag(argc, argv);
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
