// Micro-1 (google-benchmark): trie construction, seek costs, and
// leapfrog intersection vs binary hash join on the relational substrate.
#include <benchmark/benchmark.h>

#include "common/dictionary.h"
#include "common/random.h"
#include "core/generic_join.h"
#include "relational/operators.h"
#include "relational/trie.h"

namespace xjoin {
namespace {

Relation RandomBinary(Rng* rng, int64_t rows, int64_t domain) {
  auto schema = Schema::Make({"A", "B"});
  Relation rel(*schema);
  for (int64_t i = 0; i < rows; ++i) {
    rel.AppendRow({static_cast<int64_t>(rng->NextBounded(
                       static_cast<uint64_t>(domain))),
                   static_cast<int64_t>(rng->NextBounded(
                       static_cast<uint64_t>(domain)))});
  }
  return rel;
}

void BM_TrieBuild(benchmark::State& state) {
  Rng rng(1);
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0) / 4 + 1);
  for (auto _ : state) {
    auto trie = RelationTrie::Build(rel, {"A", "B"});
    benchmark::DoNotOptimize(trie);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TrieSeek(benchmark::State& state) {
  Rng rng(2);
  Relation rel = RandomBinary(&rng, state.range(0), state.range(0));
  auto trie = RelationTrie::Build(rel, {"A", "B"});
  Rng probe_rng(3);
  for (auto _ : state) {
    auto it = trie->NewIterator();
    it->Open();
    int64_t target = static_cast<int64_t>(
        probe_rng.NextBounded(static_cast<uint64_t>(state.range(0))));
    if (!it->AtEnd() && it->Key() <= target) it->Seek(target);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_TrieSeek)->Arg(10000)->Arg(100000);

// Triangle query: leapfrog (GenericJoin) vs binary hash joins.
void BM_TriangleLeapfrog(benchmark::State& state) {
  Rng rng(4);
  int64_t rows = state.range(0);
  int64_t domain = rows / 8 + 2;
  auto mk = [&](const char* a, const char* b) {
    auto schema = Schema::Make({a, b});
    Relation rel(*schema);
    for (int64_t i = 0; i < rows; ++i) {
      rel.AppendRow({static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain))),
                     static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain)))});
    }
    return rel;
  };
  Relation r = mk("A", "B"), s = mk("B", "C"), t = mk("A", "C");
  auto tr = RelationTrie::Build(r, {"A", "B"});
  auto ts = RelationTrie::Build(s, {"B", "C"});
  auto tt = RelationTrie::Build(t, {"A", "C"});
  for (auto _ : state) {
    auto ir = tr->NewIterator();
    auto is = ts->NewIterator();
    auto it = tt->NewIterator();
    GenericJoinOptions opts;
    opts.attribute_order = {"A", "B", "C"};
    auto result = GenericJoin({{"R", {"A", "B"}, ir.get()},
                               {"S", {"B", "C"}, is.get()},
                               {"T", {"A", "C"}, it.get()}},
                              opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TriangleLeapfrog)->Arg(1000)->Arg(5000);

void BM_TriangleHashJoin(benchmark::State& state) {
  Rng rng(4);  // same seed: same data as leapfrog
  int64_t rows = state.range(0);
  int64_t domain = rows / 8 + 2;
  auto mk = [&](const char* a, const char* b) {
    auto schema = Schema::Make({a, b});
    Relation rel(*schema);
    for (int64_t i = 0; i < rows; ++i) {
      rel.AppendRow({static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain))),
                     static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(domain)))});
    }
    return rel;
  };
  Relation r = mk("A", "B"), s = mk("B", "C"), t = mk("A", "C");
  for (auto _ : state) {
    auto result = JoinAll({&r, &s, &t});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TriangleHashJoin)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace xjoin

BENCHMARK_MAIN();
