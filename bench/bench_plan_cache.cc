// Prepared-plan pipeline: cold one-shot execution (prepare + pin +
// execute every time, the pre-plan QueryXJoin behaviour) vs warm
// prepared re-execution (PrepareXJoin once, ExecutePlan per request) on
// the paper and XMark workloads, plus the full database serving path
// (text -> plan cache -> ExecutePlan) on a trie-build-heavy relational
// join. Warm results are checked byte-identical to cold before timings
// are trusted.
//
// Flags: --reps=5            best-of repetitions per measurement
//        --paper-n=8         paper instance per-tag population
//        --xmark-scale=1     XMark size multiplier
//        --json=PATH         also write the records to PATH
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/database.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

struct Record {
  std::string workload;
  double cold_s = 0.0;
  double prepare_s = 0.0;
  double warm_s = 0.0;
  int64_t rows = 0;
};

// Cold = ExecuteXJoin (prepare + pin + execute, private trie builds
// each time); warm = ExecutePlan over one prepared plan.
Record BenchQuery(const std::string& label, const MultiModelQuery& query,
                  int reps) {
  Record record;
  record.workload = label;

  std::vector<Tuple> expected;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto result = ExecuteXJoin(query, XJoinOptions{});
    double seconds = timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    if (rep == 0) {
      record.cold_s = seconds;
      record.rows = static_cast<int64_t>(result->num_rows());
      expected = result->ToTuples();
    } else {
      record.cold_s = std::min(record.cold_s, seconds);
    }
  }

  Timer prepare_timer;
  auto plan = PrepareXJoin(query, XJoinOptions{});
  record.prepare_s = prepare_timer.ElapsedSeconds();
  XJ_CHECK(plan.ok()) << plan.status().ToString();
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto result = ExecutePlan(**plan, XJoinOptions{});
    double seconds = timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    XJ_CHECK(result->ToTuples() == expected)
        << label << ": prepared execution diverged from cold execution";
    record.warm_s = rep == 0 ? seconds : std::min(record.warm_s, seconds);
  }
  return record;
}

// The full serving path: cold flushes the plan + trie caches before
// every QueryXJoin (text parse, order selection, shard planning, trie
// builds); warm replays the cached plan.
Record BenchDatabase(int reps) {
  Record record;
  record.workload = "db-text";

  MultiModelDatabase db;
  std::string r_csv = "A,B\n";
  for (int i = 0; i < 20000; ++i) {
    r_csv += std::to_string(i % 500) + "," + std::to_string((i * 7) % 1000) +
             "\n";
  }
  std::string s_csv = "B,C\n";
  for (int j = 0; j < 1000; ++j) {
    s_csv += std::to_string(j) + "," + std::to_string(j % 50) + "\n";
  }
  XJ_CHECK(db.RegisterRelationCsv("R", r_csv).ok());
  XJ_CHECK(db.RegisterRelationCsv("S", s_csv).ok());
  const std::string query = "Q(*) := R, S";

  std::vector<Tuple> expected;
  for (int rep = 0; rep < reps; ++rep) {
    db.ClearPlanCache();
    db.ClearTrieCache();
    Timer timer;
    auto result = db.QueryXJoin(query, XJoinOptions{});
    double seconds = timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    if (rep == 0) {
      record.cold_s = seconds;
      record.rows = static_cast<int64_t>(result->num_rows());
      expected = result->ToTuples();
    } else {
      record.cold_s = std::min(record.cold_s, seconds);
    }
  }

  Timer prepare_timer;
  XJ_CHECK(db.PreparePlan(query).ok());
  record.prepare_s = prepare_timer.ElapsedSeconds();
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto result = db.QueryXJoin(query, XJoinOptions{});
    double seconds = timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    XJ_CHECK(result->ToTuples() == expected)
        << "db-text: cached-plan execution diverged from cold execution";
    record.warm_s = rep == 0 ? seconds : std::min(record.warm_s, seconds);
  }
  XJ_CHECK(db.plan_cache_hits() >= reps) << "plan cache did not serve hits";
  return record;
}

void Run(int argc, char** argv) {
  const int reps = static_cast<int>(IntFlag(argc, argv, "reps", 5));
  const int64_t paper_n = IntFlag(argc, argv, "paper-n", 8);
  const int64_t xmark_scale = IntFlag(argc, argv, "xmark-scale", 1);
  const char* json_path = FlagValue(argc, argv, "json");

  Banner("Plan cache: cold one-shot vs warm prepared execution");

  std::vector<Record> records;

  PaperInstance paper = MakePaperInstance(paper_n, PaperSchema::kExample34,
                                          PaperDataMode::kAdversarial);
  records.push_back(BenchQuery("paper", paper.Query(), reps));

  XMarkOptions xmark_options;
  xmark_options.num_items = 200 * xmark_scale;
  xmark_options.num_persons = 100 * xmark_scale;
  xmark_options.num_open_auctions = 120 * xmark_scale;
  xmark_options.num_closed_auctions = 100 * xmark_scale;
  XMarkInstance xmark = MakeXMark(xmark_options);
  records.push_back(BenchQuery("xmark", xmark.ClosedAuctionQuery(), reps));

  records.push_back(BenchDatabase(reps));

  Table table({"workload", "cold", "prepare (once)", "warm", "speedup",
               "|Q|"});
  for (const Record& r : records) {
    table.AddRow({r.workload, FmtSeconds(r.cold_s), FmtSeconds(r.prepare_s),
                  FmtSeconds(r.warm_s), FmtRatio(r.cold_s, r.warm_s),
                  FmtInt(r.rows)});
  }
  table.Print();

  JsonArrayWriter json;
  for (const Record& r : records) {
    json.BeginObject()
        .Field("workload", r.workload)
        .Field("cold_s", r.cold_s, 6)
        .Field("prepare_s", r.prepare_s, 6)
        .Field("warm_s", r.warm_s, 6)
        .Field("speedup", r.warm_s > 0 ? r.cold_s / r.warm_s : 0, 2)
        .Field("rows", r.rows);
  }
  json.Emit(json_path);
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Run(argc, argv);
  return 0;
}
