// Figure 1: the motivating bookstore scenario — relational
// R(orderID, userID) joined with the invoices XML through the twig
// invoice[orderID]/orderLine[ISBN]/price, output Q(userID, ISBN, price).
// Sweeps the data size and compares XJoin against the baseline.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/bookstore.h"

namespace xjoin::bench {
namespace {

void Run() {
  Banner("Figure 1: bookstore multi-model join Q(userID, ISBN, price)");
  Table table({"orders", "invoices", "|Q|", "baseline time", "xjoin time",
               "time ratio", "base max-inter", "xjoin max-inter"});
  for (int64_t scale : {1, 4, 16, 64}) {
    BookstoreOptions opts;
    opts.num_orders = 250 * scale;
    opts.num_invoices = 200 * scale;
    opts.num_users = 50 * scale;
    opts.num_books = 100 * scale;
    BookstoreInstance inst = MakeBookstore(opts);
    MultiModelQuery query = inst.Figure1Query();
    RunStats base = RunBaseline(query);
    RunStats xj = RunXJoin(query);
    XJ_CHECK(base.output_rows == xj.output_rows);
    table.AddRow({FmtInt(opts.num_orders), FmtInt(opts.num_invoices),
                  FmtInt(xj.output_rows), FmtSeconds(base.seconds),
                  FmtSeconds(xj.seconds), FmtRatio(base.seconds, xj.seconds),
                  FmtInt(base.max_intermediate), FmtInt(xj.max_intermediate)});
  }
  table.Print();
  std::printf(
      "\nOn this benign (realistic) workload the two engines produce the\n"
      "same answer; XJoin's advantage is bounded intermediates. The\n"
      "adversarial gap is measured in bench_fig3_xjoin_vs_baseline.\n");
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
