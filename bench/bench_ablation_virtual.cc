// Abl-1: cost of "not physically transforming" the twig — lazy path
// tries navigated in place vs materialized path relations + sorted
// tries. The paper's design keeps path relations virtual; this ablation
// quantifies what that choice costs/saves.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

void Row(Table* table, const char* name, const MultiModelQuery& query) {
  XJoinOptions lazy;
  RunStats a = RunXJoin(query, lazy);
  XJoinOptions mat;
  mat.materialize_paths = true;
  RunStats b = RunXJoin(query, mat);
  XJ_CHECK(a.output_rows == b.output_rows);
  table->AddRow({name, FmtInt(a.output_rows), FmtSeconds(a.seconds),
                 FmtSeconds(b.seconds), FmtRatio(b.seconds, a.seconds)});
}

void Run() {
  Banner("Ablation: lazy (paper) vs materialized path relations");
  Table table({"workload", "|Q|", "lazy time", "materialized time",
               "materialized/lazy"});
  {
    PaperInstance inst = MakePaperInstance(10, PaperSchema::kExample34,
                                           PaperDataMode::kAdversarial);
    MultiModelQuery q = inst.Query();
    Row(&table, "paper adversarial n=10", q);
  }
  {
    PaperInstance inst = MakePaperInstance(64, PaperSchema::kExample34,
                                           PaperDataMode::kRandom);
    MultiModelQuery q = inst.Query();
    Row(&table, "paper random n=64", q);
  }
  {
    XMarkOptions opts;
    opts.num_items = 800;
    opts.num_persons = 400;
    opts.num_open_auctions = 480;
    opts.num_closed_auctions = 400;
    XMarkInstance inst = MakeXMark(opts);
    MultiModelQuery q1 = inst.ClosedAuctionQuery();
    Row(&table, "xmark closed_auction", q1);
    MultiModelQuery q2 = inst.OpenAuctionQuery();
    Row(&table, "xmark open_auction (deep)", q2);
  }
  table.Print();
  std::printf(
      "\nLazy tries avoid enumerating path relations that the join never\n"
      "asks for (adversarial case); materialization can win when every\n"
      "chain is visited repeatedly.\n");
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
