// Incremental maintenance under an interleaved update/query stream:
// the delta path (ApplyRelationDelta — cached tries patched in place,
// plans re-pinned across version bumps) vs the invalidate-everything
// baseline (UpdateRelation with a full rebuilt relation of the same
// logical contents). Both databases consume the SAME random stream and
// every round's query is checked byte-identical between them before
// the timings are trusted; cache counters prove the delta side took
// the incremental route (patches, zero post-warmup trie builds)
// rather than winning by accident.
//
// Flags: --rows=20000             initial rows in R (S is rows/20)
//        --rounds=40              update/query rounds per mode
//        --updates-per-round=16   inserts+deletes per round
//        --threads=1              engine threads for the probe query
//        --json=PATH              also write the records to PATH
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/database.h"

namespace xjoin::bench {
namespace {

struct StreamRound {
  RelationDelta delta;          // what the delta side applies
  std::vector<Tuple> contents;  // full oracle contents after the round
};

struct Record {
  std::string mode;
  double update_s = 0.0;
  double query_s = 0.0;
  int64_t trie_builds = 0;   // trie-cache misses after warmup
  int64_t trie_patches = 0;
  int64_t trie_compactions = 0;
  int64_t plan_rebinds = 0;
  int64_t plan_misses = 0;
};

Relation MakeRelation(const Schema& schema, const std::vector<Tuple>& rows) {
  auto rel = Relation::FromTuples(schema, rows);
  XJ_CHECK(rel.ok()) << rel.status().ToString();
  return *std::move(rel);
}

// Pre-generates the whole stream so both modes replay identical work.
std::vector<StreamRound> MakeStream(Rng* rng, std::set<Tuple>* oracle,
                                    int rounds, int updates_per_round,
                                    int64_t domain) {
  std::vector<StreamRound> stream;
  stream.reserve(static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    StreamRound round;
    for (int u = 0; u < updates_per_round; ++u) {
      if (!oracle->empty() && rng->NextBernoulli(0.4)) {
        auto it = oracle->begin();
        std::advance(it, static_cast<long>(rng->NextBounded(oracle->size())));
        round.delta.deletes.push_back(*it);
        oracle->erase(it);
      } else {
        Tuple t = {rng->NextInRange(0, domain - 1),
                   rng->NextInRange(0, domain - 1)};
        if (oracle->insert(t).second) round.delta.inserts.push_back(t);
      }
    }
    round.contents.assign(oracle->begin(), oracle->end());
    stream.push_back(std::move(round));
  }
  return stream;
}

Record RunMode(bool use_delta, const std::vector<Tuple>& r0,
               const std::vector<Tuple>& s_rows,
               const std::vector<StreamRound>& stream, int threads,
               std::vector<std::vector<Tuple>>* results) {
  Record record;
  record.mode = use_delta ? "delta" : "rebuild";

  auto r_schema = Schema::Make({"A", "B"});
  auto s_schema = Schema::Make({"B", "C"});
  XJ_CHECK(r_schema.ok() && s_schema.ok());
  MultiModelDatabase db;
  XJ_CHECK(db.RegisterRelation("R", MakeRelation(*r_schema, r0)).ok());
  XJ_CHECK(db.RegisterRelation("S", MakeRelation(*s_schema, s_rows)).ok());

  const std::string query = "Q(*) := R, S";
  QueryOptions options;
  options.xjoin.attribute_order = {"B", "A", "C"};
  options.xjoin.num_threads = threads;

  // Warm the plan + trie caches, then baseline the counters: every
  // trie-cache miss from here on is a from-scratch rebuild caused by
  // the update path.
  XJ_CHECK(db.Query(query, options).ok());
  const int64_t builds_warm = db.trie_cache_misses();
  const CacheStats warm = db.cache_stats();

  results->reserve(stream.size());
  for (const StreamRound& round : stream) {
    Timer update_timer;
    if (use_delta) {
      XJ_CHECK(db.ApplyRelationDelta("R", round.delta).ok());
    } else {
      XJ_CHECK(
          db.UpdateRelation("R", MakeRelation(*r_schema, round.contents))
              .ok());
    }
    record.update_s += update_timer.ElapsedSeconds();

    Timer query_timer;
    auto result = db.Query(query, options);
    record.query_s += query_timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    results->push_back(result->ToTuples());
  }

  CacheStats stats = db.cache_stats();
  record.trie_builds = db.trie_cache_misses() - builds_warm;
  record.trie_patches = stats.trie_patches - warm.trie_patches;
  record.trie_compactions = stats.trie_compactions - warm.trie_compactions;
  record.plan_rebinds = stats.plan_rebinds - warm.plan_rebinds;
  record.plan_misses = stats.plan_misses - warm.plan_misses;
  return record;
}

void Run(int argc, char** argv) {
  const int64_t rows = IntFlag(argc, argv, "rows", 20000);
  const int rounds = static_cast<int>(IntFlag(argc, argv, "rounds", 40));
  const int updates_per_round =
      static_cast<int>(IntFlag(argc, argv, "updates-per-round", 16));
  const int threads = static_cast<int>(IntFlag(argc, argv, "threads", 1));
  const char* json_path = FlagValue(argc, argv, "json");

  Banner("Incremental maintenance: delta patching vs full invalidation");

  // R over a domain that keeps the join selective; S is small, static,
  // and sparse in B so the probe query's own output stays tiny — the
  // per-round cost difference is then dominated by what the update
  // path does to R's trie (patch vs full rebuild).
  const int64_t domain = rows;  // ~63% occupancy after dedup
  Rng rng(42);
  std::set<Tuple> oracle;
  for (int64_t i = 0; i < rows; ++i) {
    oracle.insert({rng.NextInRange(0, domain - 1),
                   rng.NextInRange(0, domain - 1)});
  }
  const std::vector<Tuple> r0(oracle.begin(), oracle.end());
  std::vector<Tuple> s_rows;
  for (int64_t j = 0; j < std::max<int64_t>(rows / 200, 8); ++j) {
    s_rows.push_back({(j * 173) % domain, j % 50});
  }
  std::sort(s_rows.begin(), s_rows.end());
  s_rows.erase(std::unique(s_rows.begin(), s_rows.end()), s_rows.end());
  const std::vector<StreamRound> stream =
      MakeStream(&rng, &oracle, rounds, updates_per_round, domain);

  std::vector<std::vector<Tuple>> delta_results, rebuild_results;
  Record delta =
      RunMode(true, r0, s_rows, stream, threads, &delta_results);
  Record rebuild =
      RunMode(false, r0, s_rows, stream, threads, &rebuild_results);

  // Differential gate: every round byte-identical across the modes.
  XJ_CHECK(delta_results.size() == rebuild_results.size());
  for (size_t i = 0; i < delta_results.size(); ++i) {
    XJ_CHECK(delta_results[i] == rebuild_results[i])
        << "round " << i << ": delta path diverged from full rebuild";
  }
  // Counter gate: the delta side must have actually patched (never
  // rebuilt a trie post-warmup) and kept its plans across versions.
  XJ_CHECK(delta.trie_builds == 0)
      << "delta mode rebuilt " << delta.trie_builds << " tries";
  XJ_CHECK(delta.trie_patches >= static_cast<int64_t>(stream.size()));
  XJ_CHECK(delta.plan_misses == 0);
  XJ_CHECK(rebuild.trie_builds > 0);

  Table table({"mode", "update total", "query total", "trie builds",
               "patches", "compactions", "plan rebinds"});
  for (const Record& r : {delta, rebuild}) {
    table.AddRow({r.mode, FmtSeconds(r.update_s), FmtSeconds(r.query_s),
                  FmtInt(r.trie_builds), FmtInt(r.trie_patches),
                  FmtInt(r.trie_compactions), FmtInt(r.plan_rebinds)});
  }
  table.Print();
  // The baseline's trie rebuild is lazy (first query after the
  // invalidation pays it), so the honest comparison is the full
  // update+query round trip.
  std::printf("round-trip speedup (rebuild/delta): %s\n",
              FmtRatio(rebuild.update_s + rebuild.query_s,
                       delta.update_s + delta.query_s)
                  .c_str());

  JsonArrayWriter json;
  for (const Record& r : {delta, rebuild}) {
    json.BeginObject()
        .Field("mode", r.mode)
        .Field("rows", rows)
        .Field("rounds", static_cast<int64_t>(rounds))
        .Field("updates_per_round", static_cast<int64_t>(updates_per_round))
        .Field("threads", static_cast<int64_t>(threads))
        .Field("update_s", r.update_s, 6)
        .Field("query_s", r.query_s, 6)
        .Field("trie_builds", r.trie_builds)
        .Field("trie_patches", r.trie_patches)
        .Field("trie_compactions", r.trie_compactions)
        .Field("plan_rebinds", r.plan_rebinds);
  }
  json.Emit(json_path);
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Run(argc, argv);
  return 0;
}
