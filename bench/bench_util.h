// Shared helpers for the per-figure benchmark harnesses: timing wrappers
// and fixed-width table printing in the style the paper's evaluation
// reports (who wins, by what factor, where crossovers fall).
#ifndef XJOIN_BENCH_BENCH_UTIL_H_
#define XJOIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "core/baseline.h"
#include "core/query.h"
#include "core/xjoin.h"
#include "relational/intersect_kernels.h"

namespace xjoin::bench {

/// Measurement of one engine run.
struct RunStats {
  double seconds = 0.0;
  int64_t output_rows = 0;
  int64_t max_intermediate = 0;
  int64_t total_intermediate = 0;
};

/// Runs XJoin once and extracts the Figure-3 quantities.
inline RunStats RunXJoin(const MultiModelQuery& query,
                         XJoinOptions options = {}) {
  Metrics metrics;
  options.metrics = &metrics;
  Timer timer;
  auto result = ExecuteXJoin(query, options);
  RunStats stats;
  stats.seconds = timer.ElapsedSeconds();
  XJ_CHECK(result.ok()) << result.status().ToString();
  stats.output_rows = static_cast<int64_t>(result->num_rows());
  stats.max_intermediate = metrics.Get("xjoin.max_intermediate");
  stats.total_intermediate = metrics.Get("gj.total_intermediate");
  return stats;
}

/// Runs the baseline once.
inline RunStats RunBaseline(const MultiModelQuery& query,
                            BaselineOptions options = {}) {
  Metrics metrics;
  options.metrics = &metrics;
  Timer timer;
  auto result = ExecuteBaseline(query, options);
  RunStats stats;
  stats.seconds = timer.ElapsedSeconds();
  XJ_CHECK(result.ok()) << result.status().ToString();
  stats.output_rows = static_cast<int64_t>(result->num_rows());
  stats.max_intermediate = metrics.Get("baseline.max_intermediate");
  stats.total_intermediate = metrics.Get("baseline.total_intermediate");
  return stats;
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = 0;
    for (size_t w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

inline std::string FmtF(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSeconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

inline std::string FmtRatio(double num, double den) {
  if (den <= 0) return "n/a";
  return FmtF(num / den, 1) + "x";
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Looks up a "--name=value" flag in argv; returns nullptr when absent.
/// This is the benches' entire CLI surface — no library, no state.
inline const char* FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

/// Integer flag with fallback: "--threads=4".
inline int64_t IntFlag(int argc, char** argv, const char* name,
                       int64_t fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v == nullptr ? fallback : std::strtoll(v, nullptr, 10);
}

/// Accumulates an array of flat JSON objects — the shared emission path
/// for the benches' machine-readable perf trajectories (BENCH_*.json CI
/// artifacts). Usage:
///   JsonArrayWriter json;
///   json.BeginObject().Field("workload", name).Field("seconds", s, 6);
///   json.Emit(FlagValue(argc, argv, "json"));
class JsonArrayWriter {
 public:
  /// Fluent handle onto the object currently being built.
  class Object {
   public:
    explicit Object(std::string* out) : out_(out) {}

    Object& Field(const char* name, const std::string& value) {
      Key(name);
      *out_ += '"';
      for (char c : value) {
        if (c == '"' || c == '\\') *out_ += '\\';
        *out_ += c;
      }
      *out_ += '"';
      return *this;
    }
    Object& Field(const char* name, const char* value) {
      return Field(name, std::string(value));
    }
    Object& Field(const char* name, int64_t value) {
      Key(name);
      *out_ += FmtInt(value);
      return *this;
    }
    Object& Field(const char* name, int value) {
      return Field(name, static_cast<int64_t>(value));
    }
    Object& Field(const char* name, double value, int precision = 6) {
      Key(name);
      *out_ += FmtF(value, precision);
      return *this;
    }

   private:
    void Key(const char* name) {
      if (!first_) *out_ += ", ";
      first_ = false;
      *out_ += '"';
      *out_ += name;
      *out_ += "\": ";
    }

    std::string* out_;
    bool first_ = true;
  };

  /// Starts the next object in the array. Finish one object's fields
  /// before beginning the next. Every row is stamped with the SIMD
  /// kernel the dispatch ladder resolves to on this host at emission
  /// time ("scalar" / "sse42" / "avx2"), so perf trajectories across CI
  /// runs are attributable to the code path that actually executed.
  Object BeginObject() {
    body_ += body_.empty() ? "\n  {" : "},\n  {";
    Object obj(&body_);
    obj.Field("kernel", SimdLevelName(ActiveIntersectKernel().level));
    return obj;
  }

  std::string ToString() const {
    std::string out = "[" + body_;
    if (!body_.empty()) out += "}\n";
    out += "]\n";
    return out;
  }

  /// Prints the array to stdout and, when `json_path` is non-null, also
  /// writes it there (the CI artifact).
  void Emit(const char* json_path) const {
    std::string json = ToString();
    std::printf("\nJSON:\n%s", json.c_str());
    if (json_path != nullptr) {
      std::FILE* f = std::fopen(json_path, "w");
      XJ_CHECK(f != nullptr) << "cannot open " << json_path;
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("(written to %s)\n", json_path);
    }
  }

 private:
  std::string body_;
};

/// Rewrites `--json=PATH` into google-benchmark's
/// `--benchmark_out=PATH --benchmark_out_format=json` pair, passing
/// every other argument through — the gbench harnesses' (bench_micro_*)
/// share of the JSON-emission surface, kept benchmark-agnostic so this
/// header needs no benchmark.h.
inline std::vector<std::string> TranslateJsonFlag(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  return args;
}

/// Comma-separated integer list flag: "--threads=1,2,4,8".
inline std::vector<int> IntListFlag(int argc, char** argv, const char* name,
                                    std::vector<int> fallback) {
  const char* v = FlagValue(argc, argv, name);
  if (v == nullptr) return fallback;
  std::vector<int> out;
  const char* p = v;
  while (*p != '\0') {
    char* end = nullptr;
    long value = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(value));
    p = (*end == ',') ? end + 1 : end;
  }
  return out.empty() ? fallback : out;
}

}  // namespace xjoin::bench

#endif  // XJOIN_BENCH_BENCH_UTIL_H_
