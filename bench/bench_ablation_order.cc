// Abl-3: sensitivity to the attribute expansion priority PA (Algorithm
// 1's input). Compares the automatic order against hand-picked
// alternatives on the paper instance.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/order.h"
#include "workload/paper_example.h"

namespace xjoin::bench {
namespace {

void Row(Table* table, const MultiModelQuery& query, const char* name,
         const std::vector<std::string>& order) {
  Metrics metrics;
  XJoinOptions opts;
  opts.attribute_order = order;
  opts.metrics = &metrics;
  Timer timer;
  auto result = ExecuteXJoin(query, opts);
  XJ_CHECK(result.ok()) << result.status().ToString();
  std::string order_str;
  for (const auto& a : order) order_str += a;
  table->AddRow({name, order_str, FmtSeconds(timer.ElapsedSeconds()),
                 FmtInt(metrics.Get("gj.total_intermediate")),
                 FmtInt(metrics.Get("gj.seeks")),
                 FmtInt(static_cast<int64_t>(result->num_rows()))});
}

void Run() {
  Banner("Ablation: attribute order PA (paper adversarial, n=10)");
  PaperInstance inst = MakePaperInstance(10, PaperSchema::kExample34,
                                         PaperDataMode::kAdversarial);
  MultiModelQuery query = inst.Query();
  Table table({"PA", "order", "time", "total intermediates", "seeks", "|Q|"});

  auto auto_order = ChooseAttributeOrder(query);
  XJ_CHECK(auto_order.ok());
  Row(&table, query, "auto (coverage greedy)", *auto_order);
  auto domain_order =
      ChooseAttributeOrder(query, OrderHeuristic::kSmallestDomain);
  XJ_CHECK(domain_order.ok());
  Row(&table, query, "auto (smallest domain)", *domain_order);
  Row(&table, query, "twig-first", {"A", "B", "D", "C", "E", "F", "H", "G"});
  Row(&table, query, "relation-major",
      {"A", "B", "C", "D", "E", "F", "G", "H"});
  Row(&table, query, "leaves-late", {"A", "C", "F", "B", "D", "E", "H", "G"});
  table.Print();
  std::printf(
      "\nEvery valid PA yields the same answer (worst-case optimality is\n"
      "order-independent); constants differ, which is why Algorithm 1\n"
      "takes PA as an input.\n");
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
