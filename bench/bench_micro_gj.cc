// Micro: the generic-join expansion loop, scalar vs batched, on
// output-heavy workloads — exactly where per-key virtual dispatch and
// row-at-a-time materialization dominate after the CSR-trie (PR 3) and
// plan-cache (PR 4) work. Three shapes:
//
//   triangle  R(A,B) x S(B,C) x T(A,C) over dense random relations —
//             two CSR participants at the deepest level, so batching
//             engages the devirtualized raw-array leapfrog kernel
//   path2     R(A,B) x S(B,C) — the deepest level has one participant,
//             so batching degenerates to bulk NextBlock block copies
//   xmark     the XMark closed-auction join (XJoin end to end, lazy
//             path tries in the mix — scalar-leapfrog fallback plus
//             batched materialization)
//
// Every batched run is checked byte-identical to the scalar run, with
// identical gj.* counters, before its timing is trusted.
//
// Flags: --reps=5          best-of repetitions per measurement
//        --n=220           triangle/path2 key domain (~n^2-row inputs)
//        --batch=1024      result-batch capacity for the batched runs
//        --xmark-scale=32  XMark size multiplier
//        --json=PATH       also write the records to PATH
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/generic_join.h"
#include "relational/trie.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

struct Record {
  std::string workload;
  double scalar_s = 0.0;
  double batched_s = 0.0;
  int64_t rows = 0;
  int64_t seeks = 0;
};

Relation MakeBinary(const char* a, const char* b, int n, int num, int den) {
  auto schema = Schema::Make({a, b});
  Relation rel(*schema);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if ((i * num + j) % den == 0) rel.AppendRow({i, j});
    }
  }
  return rel;
}

void CheckEquivalent(const Relation& scalar, const Relation& batched,
                     const Metrics& scalar_m, const Metrics& batched_m,
                     const std::string& label) {
  XJ_CHECK(scalar.ToTuples() == batched.ToTuples())
      << label << ": batched result diverged from scalar";
  for (const auto& [name, value] : scalar_m.counters()) {
    if (name.rfind("gj.", 0) == 0) {
      XJ_CHECK(batched_m.Get(name) == value)
          << label << ": counter " << name << " diverged (scalar " << value
          << ", batched " << batched_m.Get(name) << ")";
    }
  }
}

// One measurement protocol for every workload: run scalar (batch 0)
// and batched once, check byte-identical results and identical gj.*
// counters before trusting any timing, then take best-of-`reps` for
// both. `run` executes one configuration and returns (seconds, result).
using RunFn = std::function<std::pair<double, Relation>(int, Metrics*)>;

Record Measure(const std::string& label, const RunFn& run, int reps,
               int batch) {
  Record record;
  record.workload = label;

  Metrics scalar_m;
  auto [scalar_s, scalar_rel] = run(0, &scalar_m);
  record.scalar_s = scalar_s;
  Metrics batched_m;
  auto [batched_s, batched_rel] = run(batch, &batched_m);
  record.batched_s = batched_s;
  CheckEquivalent(scalar_rel, batched_rel, scalar_m, batched_m, label);
  record.rows = static_cast<int64_t>(scalar_rel.num_rows());
  record.seeks = scalar_m.Get("gj.seeks");

  for (int rep = 1; rep < reps; ++rep) {
    Metrics m;
    record.scalar_s = std::min(record.scalar_s, run(0, &m).first);
    Metrics mb;
    record.batched_s = std::min(record.batched_s, run(batch, &mb).first);
  }
  return record;
}

Record BenchGenericJoin(const std::string& label,
                        const std::vector<JoinInput>& inputs,
                        std::vector<std::string> order, int reps, int batch) {
  return Measure(
      label,
      [&](int batch_size, Metrics* metrics) {
        GenericJoinOptions options;
        options.attribute_order = order;
        options.batch_size = batch_size;
        options.metrics = metrics;
        Timer timer;
        auto result = GenericJoin(inputs, options);
        double seconds = timer.ElapsedSeconds();
        XJ_CHECK(result.ok()) << result.status().ToString();
        return std::make_pair(seconds, *std::move(result));
      },
      reps, batch);
}

Record BenchXMark(int64_t scale, int reps, int batch) {
  XMarkOptions opts;
  opts.num_items = 200 * scale;
  opts.num_persons = 100 * scale;
  opts.num_open_auctions = 120 * scale;
  opts.num_closed_auctions = 100 * scale;
  XMarkInstance inst = MakeXMark(opts);
  MultiModelQuery query = inst.ClosedAuctionQuery();
  return Measure(
      "xmark.closed_auction",
      [&](int batch_size, Metrics* metrics) {
        XJoinOptions options;
        options.batch_size = batch_size;
        options.metrics = metrics;
        Timer timer;
        auto result = ExecuteXJoin(query, options);
        double seconds = timer.ElapsedSeconds();
        XJ_CHECK(result.ok()) << result.status().ToString();
        return std::make_pair(seconds, *std::move(result));
      },
      reps, batch);
}

void Run(int argc, char** argv) {
  const int reps = static_cast<int>(IntFlag(argc, argv, "reps", 5));
  const int n = static_cast<int>(IntFlag(argc, argv, "n", 220));
  const int batch = static_cast<int>(IntFlag(argc, argv, "batch", 1024));
  const int64_t xmark_scale = IntFlag(argc, argv, "xmark-scale", 32);
  const char* json_path = FlagValue(argc, argv, "json");

  Banner("Generic join: scalar vs batched kernel (output-heavy mix)");

  std::vector<Record> records;

  {
    // Dense triangle: ~n^2/2 rows per relation, many closing wedges.
    Relation r = MakeBinary("A", "B", n, 7, 2);
    Relation s = MakeBinary("B", "C", n, 5, 2);
    Relation t = MakeBinary("A", "C", n, 3, 2);
    auto tr = RelationTrie::Build(r, {"A", "B"});
    auto ts = RelationTrie::Build(s, {"B", "C"});
    auto tt = RelationTrie::Build(t, {"A", "C"});
    auto ir = tr->NewIterator();
    auto is = ts->NewIterator();
    auto it = tt->NewIterator();
    std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                  {"S", {"B", "C"}, is.get()},
                                  {"T", {"A", "C"}, it.get()}};
    records.push_back(
        BenchGenericJoin("triangle", inputs, {"A", "B", "C"}, reps, batch));
  }

  {
    // Two-hop path: the C level is covered by S alone, so the batched
    // engine drains it with bulk block copies.
    Relation r = MakeBinary("A", "B", n, 3, 3);
    Relation s = MakeBinary("B", "C", n, 5, 3);
    auto tr = RelationTrie::Build(r, {"A", "B"});
    auto ts = RelationTrie::Build(s, {"B", "C"});
    auto ir = tr->NewIterator();
    auto is = ts->NewIterator();
    std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                  {"S", {"B", "C"}, is.get()}};
    records.push_back(
        BenchGenericJoin("path2", inputs, {"A", "B", "C"}, reps, batch));
  }

  records.push_back(BenchXMark(xmark_scale, reps, batch));

  Table table({"workload", "scalar", "batched", "speedup", "|Q|", "seeks"});
  JsonArrayWriter json;
  for (const Record& r : records) {
    double speedup = r.batched_s > 0 ? r.scalar_s / r.batched_s : 0.0;
    table.AddRow({r.workload, FmtSeconds(r.scalar_s), FmtSeconds(r.batched_s),
                  FmtF(speedup, 2) + "x", FmtInt(r.rows), FmtInt(r.seeks)});
    json.BeginObject()
        .Field("bench", "bench_micro_gj")
        .Field("workload", r.workload)
        .Field("batch", batch)
        .Field("scalar_s", r.scalar_s, 6)
        .Field("batched_s", r.batched_s, 6)
        .Field("speedup", speedup, 3)
        .Field("rows", r.rows)
        .Field("seeks", r.seeks);
  }
  table.Print();
  json.Emit(json_path);
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Run(argc, argv);
  return 0;
}
