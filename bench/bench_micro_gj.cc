// Micro: the generic-join expansion loop, scalar vs batched, on
// output-heavy workloads — exactly where per-key virtual dispatch and
// row-at-a-time materialization dominate after the CSR-trie (PR 3) and
// plan-cache (PR 4) work. Three shapes:
//
//   triangle  R(A,B) x S(B,C) x T(A,C) over dense random relations —
//             two CSR participants at the deepest level, so batching
//             engages the devirtualized raw-array leapfrog kernel
//   path2     R(A,B) x S(B,C) — the deepest level has one participant,
//             so batching degenerates to bulk NextBlock block copies
//   xmark     the XMark closed-auction join (XJoin end to end, lazy
//             path tries in the mix — scalar-leapfrog fallback plus
//             batched materialization)
//
// Every batched run is checked byte-identical to the scalar run, with
// identical gj.* counters, before its timing is trusted.
//
// A second sweep pins the SIMD dispatch override to each compiled
// kernel table (portable scalar, SSE4.2, AVX2) and times the batched
// engine under each on the triangle and AGM-tight workloads — the
// scalar-vs-SIMD trajectory CI tracks as BENCH_simd.json. Every level's
// result and gj.* counters are checked identical to the scalar table's
// before its timing is trusted (the kernels accelerate each seek's
// interior search, never the jump sequence).
//
// Flags: --reps=5          best-of repetitions per measurement
//        --n=220           triangle/path2 key domain (~n^2-row inputs)
//        --batch=1024      result-batch capacity for the batched runs
//        --agm-scale=64    AGM-tight instance scale for the SIMD sweep
//        --xmark-scale=32  XMark size multiplier
//        --json=PATH       also write the scalar-vs-batched records there
//        --simd-json=PATH  also write the dispatch-sweep records there
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/generic_join.h"
#include "relational/trie.h"
#include "workload/adversarial.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

struct Record {
  std::string workload;
  double scalar_s = 0.0;
  double batched_s = 0.0;
  int64_t rows = 0;
  int64_t seeks = 0;
};

Relation MakeBinary(const char* a, const char* b, int n, int num, int den) {
  auto schema = Schema::Make({a, b});
  Relation rel(*schema);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if ((i * num + j) % den == 0) rel.AppendRow({i, j});
    }
  }
  return rel;
}

void CheckEquivalent(const Relation& scalar, const Relation& batched,
                     const Metrics& scalar_m, const Metrics& batched_m,
                     const std::string& label) {
  XJ_CHECK(scalar.ToTuples() == batched.ToTuples())
      << label << ": batched result diverged from scalar";
  for (const auto& [name, value] : scalar_m.counters()) {
    if (name.rfind("gj.", 0) == 0) {
      XJ_CHECK(batched_m.Get(name) == value)
          << label << ": counter " << name << " diverged (scalar " << value
          << ", batched " << batched_m.Get(name) << ")";
    }
  }
}

// One measurement protocol for every workload: run scalar (batch 0)
// and batched once, check byte-identical results and identical gj.*
// counters before trusting any timing, then take best-of-`reps` for
// both. `run` executes one configuration and returns (seconds, result).
using RunFn = std::function<std::pair<double, Relation>(int, Metrics*)>;

Record Measure(const std::string& label, const RunFn& run, int reps,
               int batch) {
  Record record;
  record.workload = label;

  Metrics scalar_m;
  auto [scalar_s, scalar_rel] = run(0, &scalar_m);
  record.scalar_s = scalar_s;
  Metrics batched_m;
  auto [batched_s, batched_rel] = run(batch, &batched_m);
  record.batched_s = batched_s;
  CheckEquivalent(scalar_rel, batched_rel, scalar_m, batched_m, label);
  record.rows = static_cast<int64_t>(scalar_rel.num_rows());
  record.seeks = scalar_m.Get("gj.seeks");

  for (int rep = 1; rep < reps; ++rep) {
    Metrics m;
    record.scalar_s = std::min(record.scalar_s, run(0, &m).first);
    Metrics mb;
    record.batched_s = std::min(record.batched_s, run(batch, &mb).first);
  }
  return record;
}

RunFn GenericJoinRunFn(std::vector<JoinInput> inputs,
                       std::vector<std::string> order) {
  return [inputs = std::move(inputs),
          order = std::move(order)](int batch_size, Metrics* metrics) {
    GenericJoinOptions options;
    options.attribute_order = order;
    options.batch_size = batch_size;
    options.metrics = metrics;
    Timer timer;
    auto result = GenericJoin(inputs, options);
    double seconds = timer.ElapsedSeconds();
    XJ_CHECK(result.ok()) << result.status().ToString();
    return std::make_pair(seconds, *std::move(result));
  };
}

Record BenchGenericJoin(const std::string& label,
                        const std::vector<JoinInput>& inputs,
                        std::vector<std::string> order, int reps, int batch) {
  return Measure(label, GenericJoinRunFn(inputs, std::move(order)), reps,
                 batch);
}

// One dispatch-sweep measurement: the batched engine pinned to one
// kernel table.
struct SimdRecord {
  std::string workload;
  std::string dispatch;
  double seconds = 0.0;
  int64_t rows = 0;
  int64_t seeks = 0;
};

// Times `run` batched under every kernel table that is both compiled in
// and runnable on this host, checking each level's result and counters
// against the scalar table's run first.
void SweepDispatch(const std::string& label, const RunFn& run, int reps,
                   int batch, std::vector<SimdRecord>* out) {
  SetSimdDispatchOverride(SimdLevel::kScalar);
  Metrics scalar_m;
  auto [scalar_s, scalar_rel] = run(batch, &scalar_m);
  ClearSimdDispatchOverride();
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    if (IntersectKernelFor(level) == nullptr) continue;  // not compiled in
    if (level > DetectedSimdLevel()) continue;           // not runnable here
    SetSimdDispatchOverride(level);
    SimdRecord record;
    record.workload = label;
    record.dispatch = SimdLevelName(level);
    Metrics m;
    auto [seconds, rel] = run(batch, &m);
    CheckEquivalent(scalar_rel, rel, scalar_m, m,
                    label + "@" + record.dispatch);
    record.seconds = level == SimdLevel::kScalar
                         ? std::min(seconds, scalar_s)
                         : seconds;
    record.rows = static_cast<int64_t>(rel.num_rows());
    record.seeks = m.Get("gj.seeks");
    for (int rep = 1; rep < reps; ++rep) {
      Metrics mm;
      record.seconds = std::min(record.seconds, run(batch, &mm).first);
    }
    ClearSimdDispatchOverride();
    out->push_back(record);
  }
}

Record BenchXMark(int64_t scale, int reps, int batch) {
  XMarkOptions opts;
  opts.num_items = 200 * scale;
  opts.num_persons = 100 * scale;
  opts.num_open_auctions = 120 * scale;
  opts.num_closed_auctions = 100 * scale;
  XMarkInstance inst = MakeXMark(opts);
  MultiModelQuery query = inst.ClosedAuctionQuery();
  return Measure(
      "xmark.closed_auction",
      [&](int batch_size, Metrics* metrics) {
        XJoinOptions options;
        options.batch_size = batch_size;
        options.metrics = metrics;
        Timer timer;
        auto result = ExecuteXJoin(query, options);
        double seconds = timer.ElapsedSeconds();
        XJ_CHECK(result.ok()) << result.status().ToString();
        return std::make_pair(seconds, *std::move(result));
      },
      reps, batch);
}

void Run(int argc, char** argv) {
  const int reps = static_cast<int>(IntFlag(argc, argv, "reps", 5));
  const int n = static_cast<int>(IntFlag(argc, argv, "n", 220));
  const int batch = static_cast<int>(IntFlag(argc, argv, "batch", 1024));
  const int agm_scale = static_cast<int>(IntFlag(argc, argv, "agm-scale", 64));
  const int64_t xmark_scale = IntFlag(argc, argv, "xmark-scale", 32);
  const char* json_path = FlagValue(argc, argv, "json");
  const char* simd_json_path = FlagValue(argc, argv, "simd-json");

  Banner("Generic join: scalar vs batched kernel (output-heavy mix)");

  std::vector<Record> records;
  std::vector<SimdRecord> simd_records;

  {
    // Dense triangle: ~n^2/2 rows per relation, many closing wedges.
    Relation r = MakeBinary("A", "B", n, 7, 2);
    Relation s = MakeBinary("B", "C", n, 5, 2);
    Relation t = MakeBinary("A", "C", n, 3, 2);
    auto tr = RelationTrie::Build(r, {"A", "B"});
    auto ts = RelationTrie::Build(s, {"B", "C"});
    auto tt = RelationTrie::Build(t, {"A", "C"});
    auto ir = tr->NewIterator();
    auto is = ts->NewIterator();
    auto it = tt->NewIterator();
    std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                  {"S", {"B", "C"}, is.get()},
                                  {"T", {"A", "C"}, it.get()}};
    RunFn run = GenericJoinRunFn(inputs, {"A", "B", "C"});
    records.push_back(Measure("triangle", run, reps, batch));
    SweepDispatch("triangle", run, reps, batch, &simd_records);
  }

  {
    // AGM-tight triangle: the adversarial instance whose output meets
    // the worst-case bound — skewed level cardinalities, so the sweep
    // exercises both the gallop and merge strategies.
    auto inst = MakeAgmTightInstance({{"A", "B"}, {"B", "C"}, {"C", "A"}},
                                     agm_scale);
    XJ_CHECK(inst.ok()) << inst.status().ToString();
    MultiModelQuery query;
    for (size_t i = 0; i < inst->relations.size(); ++i) {
      query.relations.push_back(
          {"R" + std::to_string(i + 1), inst->relations[i].get()});
    }
    RunFn run = [&query](int batch_size, Metrics* metrics) {
      XJoinOptions options;
      options.batch_size = batch_size;
      options.metrics = metrics;
      Timer timer;
      auto result = ExecuteXJoin(query, options);
      double seconds = timer.ElapsedSeconds();
      XJ_CHECK(result.ok()) << result.status().ToString();
      return std::make_pair(seconds, *std::move(result));
    };
    SweepDispatch("agm_tight", run, reps, batch, &simd_records);
  }

  {
    // Two-hop path: the C level is covered by S alone, so the batched
    // engine drains it with bulk block copies.
    Relation r = MakeBinary("A", "B", n, 3, 3);
    Relation s = MakeBinary("B", "C", n, 5, 3);
    auto tr = RelationTrie::Build(r, {"A", "B"});
    auto ts = RelationTrie::Build(s, {"B", "C"});
    auto ir = tr->NewIterator();
    auto is = ts->NewIterator();
    std::vector<JoinInput> inputs{{"R", {"A", "B"}, ir.get()},
                                  {"S", {"B", "C"}, is.get()}};
    records.push_back(
        BenchGenericJoin("path2", inputs, {"A", "B", "C"}, reps, batch));
  }

  records.push_back(BenchXMark(xmark_scale, reps, batch));

  Table table({"workload", "scalar", "batched", "speedup", "|Q|", "seeks"});
  JsonArrayWriter json;
  for (const Record& r : records) {
    double speedup = r.batched_s > 0 ? r.scalar_s / r.batched_s : 0.0;
    table.AddRow({r.workload, FmtSeconds(r.scalar_s), FmtSeconds(r.batched_s),
                  FmtF(speedup, 2) + "x", FmtInt(r.rows), FmtInt(r.seeks)});
    json.BeginObject()
        .Field("bench", "bench_micro_gj")
        .Field("workload", r.workload)
        .Field("batch_size", batch)
        .Field("scalar_s", r.scalar_s, 6)
        .Field("batched_s", r.batched_s, 6)
        .Field("speedup", speedup, 3)
        .Field("rows", r.rows)
        .Field("seeks", r.seeks);
  }
  table.Print();
  json.Emit(json_path);

  Banner("SIMD dispatch sweep: batched engine per kernel table");

  Table simd_table(
      {"workload", "dispatch", "seconds", "vs scalar", "|Q|", "seeks"});
  JsonArrayWriter simd_json;
  for (const SimdRecord& r : simd_records) {
    double scalar_s = 0.0;
    for (const SimdRecord& s : simd_records) {
      if (s.workload == r.workload && s.dispatch == std::string("scalar")) {
        scalar_s = s.seconds;
      }
    }
    simd_table.AddRow({r.workload, r.dispatch, FmtSeconds(r.seconds),
                       FmtRatio(scalar_s, r.seconds), FmtInt(r.rows),
                       FmtInt(r.seeks)});
    simd_json.BeginObject()
        .Field("bench", "bench_micro_gj.simd")
        .Field("workload", r.workload)
        .Field("dispatch", r.dispatch)
        .Field("batch_size", batch)
        .Field("seconds", r.seconds, 6)
        .Field("speedup_vs_scalar",
               r.seconds > 0 ? scalar_s / r.seconds : 0.0, 3)
        .Field("rows", r.rows)
        .Field("seeks", r.seeks);
  }
  simd_table.Print();
  simd_json.Emit(simd_json_path);
}

}  // namespace
}  // namespace xjoin::bench

int main(int argc, char** argv) {
  xjoin::bench::Run(argc, argv);
  return 0;
}
