// Abl-2: the paper's on-going-work extension — partially validating the
// twig structure during the join (prefix pruning) — on vs off.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "workload/paper_example.h"
#include "workload/xmark.h"

namespace xjoin::bench {
namespace {

struct PruneStats {
  RunStats run;
  int64_t expanded = 0;
  int64_t pruned = 0;
};

PruneStats RunWith(const MultiModelQuery& query, bool pruning) {
  Metrics metrics;
  XJoinOptions opts;
  opts.structural_pruning = pruning;
  opts.metrics = &metrics;
  Timer timer;
  auto result = ExecuteXJoin(query, opts);
  PruneStats stats;
  stats.run.seconds = timer.ElapsedSeconds();
  XJ_CHECK(result.ok()) << result.status().ToString();
  stats.run.output_rows = static_cast<int64_t>(result->num_rows());
  stats.expanded = metrics.Get("xjoin.expanded");
  stats.pruned = metrics.Get("xjoin.pruned");
  return stats;
}

void Row(Table* table, const char* name, const MultiModelQuery& query) {
  PruneStats off = RunWith(query, false);
  PruneStats on = RunWith(query, true);
  XJ_CHECK(off.run.output_rows == on.run.output_rows);
  table->AddRow({name, FmtInt(off.run.output_rows), FmtInt(off.expanded),
                 FmtInt(on.expanded), FmtInt(on.pruned),
                 FmtSeconds(off.run.seconds), FmtSeconds(on.run.seconds)});
}

void Run() {
  Banner("Ablation: in-join structural pruning (paper section 4 extension)");
  Table table({"workload", "|Q|", "expanded (off)", "expanded (on)",
               "prefixes pruned", "time off", "time on"});
  {
    PaperInstance inst = MakePaperInstance(8, PaperSchema::kExample34,
                                           PaperDataMode::kRandom);
    MultiModelQuery q = inst.Query();
    Row(&table, "paper random n=8", q);
  }
  {
    PaperInstance inst = MakePaperInstance(10, PaperSchema::kExample34,
                                           PaperDataMode::kAdversarial);
    MultiModelQuery q = inst.Query();
    Row(&table, "paper adversarial n=10", q);
  }
  {
    XMarkOptions opts;
    XMarkInstance inst = MakeXMark(opts);
    MultiModelQuery q = inst.OpenAuctionQuery();
    Row(&table, "xmark open_auction", q);
  }
  table.Print();
  std::printf(
      "\n'expanded' counts value tuples surviving attribute expansion\n"
      "before final validation; pruning removes structurally infeasible\n"
      "prefixes early at the price of validator calls per binding.\n");
}

}  // namespace
}  // namespace xjoin::bench

int main() {
  xjoin::bench::Run();
  return 0;
}
