// The pre-CSR RelationTrie layout, kept verbatim as the benchmark
// comparison baseline: full sorted columns (duplicates included below
// level 0's grouping), a comparator-per-row std::sort build, and
// binary-search row-range cursors. Lives in its own translation unit so
// the compiler cannot devirtualize/inline it into the benchmark loop —
// the original implementation sat behind the library boundary exactly
// like the CSR trie does, and the comparison must keep that symmetric.
#ifndef XJOIN_BENCH_LEGACY_TRIE_H_
#define XJOIN_BENCH_LEGACY_TRIE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/trie_iterator.h"

namespace xjoin {
namespace bench {

class LegacySortedColumnTrie {
 public:
  static LegacySortedColumnTrie Build(const Relation& relation,
                                      const std::vector<std::string>& order);

  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0].size(); }

  std::unique_ptr<TrieIterator> NewIterator() const;

 private:
  friend class LegacySortedColumnTrieIterator;

  std::vector<std::vector<int64_t>> cols_;
};

class LegacySortedColumnTrieIterator final : public TrieIterator {
 public:
  explicit LegacySortedColumnTrieIterator(const LegacySortedColumnTrie* trie)
      : trie_(trie) {}

  int arity() const override;
  int depth() const override { return depth_; }
  void Open() override;
  void Up() override;
  bool AtEnd() const override;
  int64_t Key() const override;
  void Next() override;
  void Seek(int64_t key) override;
  int64_t EstimateKeys() const override;
  std::unique_ptr<TrieIterator> Clone() const override;

 private:
  struct Frame {
    size_t lo, hi;
    size_t pos, group_end;
  };

  void FixGroup();

  const LegacySortedColumnTrie* trie_;
  int depth_ = -1;
  std::vector<Frame> frames_;
};

}  // namespace bench
}  // namespace xjoin

#endif  // XJOIN_BENCH_LEGACY_TRIE_H_
