#include "legacy_trie.h"

#include <algorithm>
#include <numeric>

namespace xjoin {
namespace bench {

LegacySortedColumnTrie LegacySortedColumnTrie::Build(
    const Relation& relation, const std::vector<std::string>& order) {
  std::vector<size_t> perm;
  for (const auto& name : order) {
    perm.push_back(static_cast<size_t>(relation.schema().IndexOf(name)));
  }
  const size_t n = relation.num_rows();
  const size_t k = order.size();
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), size_t{0});
  std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
    for (size_t c = 0; c < k; ++c) {
      int64_t va = relation.at(a, perm[c]);
      int64_t vb = relation.at(b, perm[c]);
      if (va != vb) return va < vb;
    }
    return false;
  });
  LegacySortedColumnTrie trie;
  trie.cols_.resize(k);
  for (auto& col : trie.cols_) col.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t r = rows[i];
    if (i > 0) {
      size_t p = rows[i - 1];
      bool same = true;
      for (size_t c = 0; c < k; ++c) {
        if (relation.at(r, perm[c]) != relation.at(p, perm[c])) {
          same = false;
          break;
        }
      }
      if (same) continue;  // dedup
    }
    for (size_t c = 0; c < k; ++c)
      trie.cols_[c].push_back(relation.at(r, perm[c]));
  }
  return trie;
}

std::unique_ptr<TrieIterator> LegacySortedColumnTrie::NewIterator() const {
  return std::make_unique<LegacySortedColumnTrieIterator>(this);
}

int LegacySortedColumnTrieIterator::arity() const {
  return static_cast<int>(trie_->cols_.size());
}

void LegacySortedColumnTrieIterator::FixGroup() {
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const auto& col = trie_->cols_[static_cast<size_t>(depth_)];
  if (f.pos >= f.hi) {
    f.group_end = f.pos;
    return;
  }
  int64_t key = col[f.pos];
  size_t step = 1;
  size_t lo = f.pos;
  size_t hi = f.hi;
  while (lo + step < hi && col[lo + step] == key) {
    lo += step;
    step <<= 1;
  }
  size_t search_hi = std::min(lo + step, hi);
  f.group_end = static_cast<size_t>(
      std::upper_bound(col.begin() + static_cast<ptrdiff_t>(lo),
                       col.begin() + static_cast<ptrdiff_t>(search_hi), key) -
      col.begin());
}

void LegacySortedColumnTrieIterator::Open() {
  size_t lo, hi;
  if (depth_ < 0) {
    lo = 0;
    hi = trie_->num_rows();
  } else {
    const Frame& f = frames_[static_cast<size_t>(depth_)];
    lo = f.pos;
    hi = f.group_end;
  }
  ++depth_;
  frames_.resize(static_cast<size_t>(depth_) + 1);
  Frame& nf = frames_[static_cast<size_t>(depth_)];
  nf.lo = lo;
  nf.hi = hi;
  nf.pos = lo;
  FixGroup();
}

void LegacySortedColumnTrieIterator::Up() {
  frames_.pop_back();
  --depth_;
}

bool LegacySortedColumnTrieIterator::AtEnd() const {
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return f.pos >= f.hi;
}

int64_t LegacySortedColumnTrieIterator::Key() const {
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return trie_->cols_[static_cast<size_t>(depth_)][f.pos];
}

void LegacySortedColumnTrieIterator::Next() {
  Frame& f = frames_[static_cast<size_t>(depth_)];
  f.pos = f.group_end;
  FixGroup();
}

void LegacySortedColumnTrieIterator::Seek(int64_t key) {
  Frame& f = frames_[static_cast<size_t>(depth_)];
  const auto& col = trie_->cols_[static_cast<size_t>(depth_)];
  size_t base = f.pos;
  size_t step = 1;
  while (base + step < f.hi && col[base + step] < key) {
    base += step;
    step <<= 1;
  }
  size_t search_hi = std::min(base + step, f.hi);
  f.pos = static_cast<size_t>(
      std::lower_bound(col.begin() + static_cast<ptrdiff_t>(base),
                       col.begin() + static_cast<ptrdiff_t>(search_hi), key) -
      col.begin());
  FixGroup();
}

int64_t LegacySortedColumnTrieIterator::EstimateKeys() const {
  const Frame& f = frames_[static_cast<size_t>(depth_)];
  return static_cast<int64_t>(f.hi - f.pos);
}

std::unique_ptr<TrieIterator> LegacySortedColumnTrieIterator::Clone() const {
  return std::make_unique<LegacySortedColumnTrieIterator>(trie_);
}

}  // namespace bench
}  // namespace xjoin
