// Micro-2 (google-benchmark): twig matching strategies on XMark-like
// documents — structural-join plan vs PathStack vs naive, plus the XML
// parser throughput.
#include <benchmark/benchmark.h>

#include "common/dictionary.h"
#include "twigjoin/naive_twig.h"
#include "twigjoin/twig_matchers.h"
#include "twigjoin/twigstack.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xml/serialize.h"

namespace xjoin {
namespace {

struct Fixture {
  XMarkInstance inst;
  Twig twig;
  Fixture() : inst(MakeXMark(XMarkOptions{})) {
    auto t = Twig::Parse("open_auction[bidder/personref]/itemref");
    twig = *std::move(t);
  }
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

void BM_TwigStructuralPlan(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    auto result =
        MatchTwigStructuralPlan(*f.inst.doc, *f.inst.index, f.twig);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TwigStructuralPlan);

void BM_TwigPathStack(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    auto result = MatchTwigPathStack(*f.inst.doc, *f.inst.index, f.twig);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TwigPathStack);

void BM_TwigStack(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    auto result = MatchTwigStack(*f.inst.doc, *f.inst.index, f.twig);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TwigStack);

void BM_TwigNaive(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    auto result = MatchTwigNaive(*f.inst.doc, f.twig);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TwigNaive);

void BM_XmlParse(benchmark::State& state) {
  Fixture& f = GetFixture();
  std::string text = WriteXml(*f.inst.doc);
  for (auto _ : state) {
    auto doc = ParseXml(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse);

}  // namespace
}  // namespace xjoin

BENCHMARK_MAIN();
